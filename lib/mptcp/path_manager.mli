(** Path management: which routes a connection gets, and their tags.

    Mirrors the paper's modified [ndiffports] path manager: the operator
    (or an algorithm such as Yen's) supplies a list of paths; each is
    assigned a distinct tag, and one subflow per tag is created.  The
    first path in the list is the {e default} path — the one the
    connection is established on (the paper's experiments hinge on which
    path plays this role). *)

type t = (Packet.tag * Netgraph.Path.t) list

val tag_paths : ?first_tag:int -> Netgraph.Path.t list -> t
(** Assign consecutive tags (default from 1) in list order. *)

val ndiffports :
  Netgraph.Topology.t -> src:int -> dst:int -> subflows:int
  -> ?weight:Netgraph.Shortest.weight -> unit -> t
(** The k-shortest-paths analogue of [ndiffports]: take the [subflows]
    shortest simple paths (by [weight], default propagation delay) and
    tag them.  The shortest path comes first, i.e. is the default —
    matching "Path 2 as default shortest path" in the paper. *)

val fullmesh :
  Netgraph.Topology.t -> src:int -> dst:int
  -> ?weight:Netgraph.Shortest.weight -> unit -> t
(** The kernel's [fullmesh] path manager for multihomed hosts.  In this
    model a host's "addresses" are its access links, so fullmesh tries
    one subflow per (source access link, destination access link) pair:
    the shortest path forced to leave [src] through the one link and
    enter [dst] through the other.  Pairs with no such route are
    skipped; duplicate paths are kept once; the shortest surviving path
    comes first (the default subflow).  Raises [Invalid_argument] when
    [src = dst]. *)

val with_default : t -> default_tag:Packet.tag -> t
(** Reorder so the path carrying [default_tag] is first.  Raises
    [Not_found] when no path has that tag. *)

val install : Netsim.Net.t -> t -> unit
(** Install forward and reverse routes for every tagged path. *)

(** Runtime path liveness: which of a connection's tagged paths are
    currently usable.  The path list itself stays immutable data; this
    overlay records per-tag active flags that {!Mptcp.Connection}
    consults when granting data, flipped either by its own RTO-cap
    detector or externally by the event layer. *)
module Liveness : sig
  type pm := t
  type t

  val create : pm -> t
  (** Every tagged path starts active. *)

  val is_active : t -> tag:Packet.tag -> bool
  (** Raises [Invalid_argument] on a tag not in the path list. *)

  val active_count : t -> int

  val deactivate : t -> tag:Packet.tag -> bool
  (** Mark the path dead; returns [true] on an actual transition
      (idempotent otherwise, firing no callback and counting no churn). *)

  val reactivate : t -> tag:Packet.tag -> bool
  (** Mark the path usable again; same transition semantics. *)

  val churn : t -> int
  (** Number of state transitions so far (both directions). *)

  val set_on_change : t -> (tag:Packet.tag -> active:bool -> unit) option -> unit
  (** Callback fired once per actual transition, after the flag flips. *)
end

val pp : Netgraph.Topology.t -> Format.formatter -> t -> unit
