open Tcp

(* The coupling sums run over the "active" set: established subflows
   only, falling back to every slot when none is established yet
   (connection start-up).  The old implementation materialised that set
   as a filtered copy of a sibling-record array per call; here it is a
   skip test over the group's flat arrays — same slots in the same
   order, so every fold below is float-for-float identical, with the
   established count read from the group's incrementally maintained
   aggregate instead of recounted.

   The accumulator is the group's own [scratch] cell: float-array
   stores are unboxed, so the folds allocate nothing per ACK (a local
   [ref] would box every update without flambda), and because the cell
   belongs to the group — not the module — scenario runs on parallel
   pool domains never share it.  Within one (single-threaded)
   simulation the folds never nest, so one cell per group is safe. *)

let use g i = g.Cc.n_established = 0 || g.Cc.established.(i)

let active_count g =
  if g.Cc.n_established = 0 then g.Cc.n else g.Cc.n_established

let rate_sum g =
  let n = g.Cc.n in
  let cwnds = g.Cc.cwnds and srtts = g.Cc.srtts and acc = g.Cc.scratch in
  acc.(0) <- 0.0;
  for i = 0 to n - 1 do
    if use g i then acc.(0) <- acc.(0) +. (cwnds.(i) /. srtts.(i))
  done;
  acc.(0)

let max_rate2 g =
  let n = g.Cc.n in
  let cwnds = g.Cc.cwnds and srtts = g.Cc.srtts and acc = g.Cc.scratch in
  acc.(0) <- 0.0;
  for i = 0 to n - 1 do
    if use g i then
      acc.(0) <- Float.max acc.(0) (cwnds.(i) /. (srtts.(i) *. srtts.(i)))
  done;
  acc.(0)

let max_rate g =
  let n = g.Cc.n in
  let cwnds = g.Cc.cwnds and srtts = g.Cc.srtts and acc = g.Cc.scratch in
  acc.(0) <- 0.0;
  for i = 0 to n - 1 do
    if use g i then acc.(0) <- Float.max acc.(0) (cwnds.(i) /. srtts.(i))
  done;
  acc.(0)

let total_cwnd g =
  let n = g.Cc.n in
  let cwnds = g.Cc.cwnds and acc = g.Cc.scratch in
  acc.(0) <- 0.0;
  for i = 0 to n - 1 do
    if use g i then acc.(0) <- acc.(0) +. cwnds.(i)
  done;
  acc.(0)

let halve_on_loss (ctx : Cc.ctx) =
  let half = Float.max Cc.min_cwnd (ctx.Cc.get_cwnd () /. 2.0) in
  ctx.Cc.set_ssthresh half;
  ctx.Cc.set_cwnd half

let collapse_on_rto (ctx : Cc.ctx) =
  let half = Float.max Cc.min_cwnd (ctx.Cc.get_cwnd () /. 2.0) in
  ctx.Cc.set_ssthresh half;
  ctx.Cc.set_cwnd 1.0
