open Tcp

let factory (ctx : Cc.ctx) =
  let on_ack ~acked =
    if not (Cc.slow_start_ack ctx ~acked) then begin
      let g = ctx.Cc.group () in
      let w_total = Coupled.total_cwnd g in
      let denom = Coupled.rate_sum g in
      let alpha =
        if denom <= 0.0 || w_total <= 0.0 then 0.0
        else w_total *. Coupled.max_rate2 g /. (denom *. denom)
      in
      let w = ctx.Cc.get_cwnd () in
      let acked_mss = float_of_int acked /. float_of_int ctx.Cc.mss in
      let coupled = if w_total > 0.0 then alpha /. w_total else 0.0 in
      let inc = Float.min coupled (1.0 /. w) in
      ctx.Cc.set_cwnd (w +. (inc *. acked_mss))
    end
  in
  {
    Cc.name = "lia";
    on_ack;
    on_loss = (fun () -> Coupled.halve_on_loss ctx);
    on_rto = (fun () -> Coupled.collapse_on_rto ctx);
  }
