(** An MPTCP connection: one byte stream striped over several TCP
    subflows, each pinned to a tagged path.

    This is the system under test in the paper: a bulk transfer (iperf)
    from [s] to [d] over three overlapping paths, with the chosen
    congestion-control algorithm deciding how the stream spreads across
    the paths.  The first path is the default subflow; the others join
    [join_delay] later, as the kernel's path manager would create them
    after connection establishment. *)

type config = {
  sender : Tcp.Sender.config;
  scheduler : Scheduler.policy;
  send_buffer : int option;
      (** connection-level in-flight cap in bytes; [None] (default)
          models iperf's effectively unlimited buffer *)
  join_delay : Engine.Time.t;
      (** when the non-default subflows start (default 10 ms) *)
  start_jitter : Engine.Time.t;
      (** each subflow's start is delayed by an extra uniform draw from
          [\[0, start_jitter\]] (default 0, i.e. fully deterministic);
          requires [rng] at {!establish} to take effect *)
  delayed_ack : bool;
      (** receiver-side delayed ACKs (see {!Tcp.Receiver.create});
          default [false] *)
  reinjection : bool;
      (** opportunistic reinjection with penalization (Raiciu et al.,
          NSDI 2012): when the connection-level [send_buffer] window
          blocks a subflow, the blocking chunk is re-sent on that subflow
          and the slow subflow that owns it gets its window halved.
          Only meaningful together with [send_buffer]; default [false] *)
  rto_cap : int option;
      (** failover threshold: after this many consecutive RTO expiries
          with no forward ACK progress a subflow is declared dead
          ({!deactivate_subflow}), its un-data-acked chunks are re-sent
          on the surviving subflows and the scheduler stops granting it
          data.  [None] (default) disables liveness detection — the
          pre-failover behaviour *)
}

val default_config : config

type t

val establish :
  net:Netsim.Net.t ->
  src:Tcp.Endpoint.t ->
  dst:Tcp.Endpoint.t ->
  conn:int ->
  paths:Path_manager.t ->
  cc:Algorithm.t ->
  ?config:config ->
  ?rng:Engine.Rng.t ->
  ?total_bytes:int ->
  ?start_at:Engine.Time.t ->
  unit -> t
(** Installs the tagged routes, creates one (sender, receiver) pair per
    path and starts the transfer.  [conn] must be unique per simulation;
    tags must be unique per (src, dst) pair.  Raises [Invalid_argument]
    on an empty path list. *)

(** {1 Observation} *)

val subflow_count : t -> int
val subflow_sender : t -> int -> Tcp.Sender.t

val subflow_receiver : t -> int -> Tcp.Receiver.t
(** The receiving end of subflow [i] — exposed so the audit subsystem
    can tap per-subflow deliveries. *)

val subflow_tag : t -> int -> Packet.tag
val subflow_path : t -> int -> Netgraph.Path.t

val subflow_rx_bytes : t -> int -> int
(** In-order subflow-level bytes the receiver got on that subflow. *)

val delivered_bytes : t -> int
(** Connection-level bytes delivered in data-sequence order. *)

val data_ack : t -> int
val reassembly_buffered : t -> int

val data_ack_rx : t -> int
(** Highest connection-level DATA_ACK the sender side has seen; trails
    {!data_ack} by at most the network's round trip. *)

val mapped_bytes : t -> int
(** Distinct connection-level bytes mapped onto any subflow so far —
    an upper bound on what the receiver can have seen.  Accounts for the
    Redundant scheduler's duplicate mappings. *)

val completed_at : t -> Engine.Time.t option

val reinjections : t -> int
(** Count of chunks re-sent on a faster subflow to clear head-of-line
    blocking (see [config.reinjection]). *)

val cc : t -> Algorithm.t

val total_throughput_bps : t -> now:Engine.Time.t -> float
(** Delivered connection-level goodput averaged since [start_at]. *)

(** {1 Path liveness} *)

val liveness : t -> Path_manager.Liveness.t
(** The per-path active flags this connection's scheduler consults. *)

val subflow_active : t -> int -> bool

val deactivate_subflow : t -> int -> unit
(** Declare subflow [i]'s path dead: the scheduler stops granting it
    data, and every chunk it owns above the connection-level cumulative
    ACK is queued for re-transmission on the surviving subflows (chunk
    ownership is tracked whenever [reinjection] or [rto_cap] is on).
    Idempotent.  Called internally when [rto_cap] trips; the event layer
    calls it for scripted [Subflow_close]. *)

val reactivate_subflow : t -> int -> unit
(** Mark subflow [i]'s path usable again and wake its sender.
    Idempotent. *)

(** {1 Monitoring} *)

type monitor_event =
  | Sched_grant of { subflow : int; dseq : int; len : int }
      (** the scheduler mapped connection-level bytes
          [\[dseq, dseq+len)] onto [subflow] (for the Redundant policy,
          each subflow's private mapping of the shared stream) *)
  | Sched_defer of { subflow : int; preferred : int option }
      (** [subflow] asked for data but the scheduler preferred another
          subflow ([preferred], when known), e.g. min-RTT steering away
          from a slow path *)
  | Reinjected of { subflow : int; dseq : int; len : int; owner : int }
      (** head-of-line-blocking chunk at [dseq] re-sent on [subflow];
          [owner] is the (penalized) subflow that originally carried
          it — or, after a failover, the dead subflow it was rescued
          from *)
  | Subflow_state of { subflow : int; active : bool }
      (** the subflow's path was declared dead ([active = false]) or
          usable again — by the RTO-cap detector or the event layer *)

val set_monitor : t -> (monitor_event -> unit) option -> unit
(** Installs (or clears) a scheduler-decision tap; fires after the
    connection's own state is updated.  [None] (the default) costs one
    mutable load per decision. *)

val monitor : t -> (monitor_event -> unit) option
(** The currently installed tap, so a second subscriber can chain
    rather than clobber it. *)
