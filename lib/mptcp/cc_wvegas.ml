open Tcp

type state = {
  total_alpha : float;
  mutable base_rtt_s : float;    (* running minimum of the smoothed RTT *)
  mutable next_adjust_s : float; (* Vegas acts once per RTT *)
}

let gamma = 1.0 (* backlog (packets) that ends slow start *)

(* This path's share of the global backlog budget, by rate. *)
let quota st (ctx : Cc.ctx) =
  let total_rate = Coupled.rate_sum (ctx.Cc.group ()) in
  let own_rate = ctx.Cc.get_cwnd () /. ctx.Cc.srtt_s () in
  if total_rate <= 0.0 then 2.0
  else Float.max 2.0 (st.total_alpha *. own_rate /. total_rate)

let factory_with ?(total_alpha = 10.0) () (ctx : Cc.ctx) =
  let st = { total_alpha; base_rtt_s = infinity; next_adjust_s = 0.0 } in
  let on_ack ~acked:_ =
    let now = ctx.Cc.now_s () in
    let rtt = ctx.Cc.srtt_s () in
    if rtt < st.base_rtt_s then st.base_rtt_s <- rtt;
    if now >= st.next_adjust_s then begin
      st.next_adjust_s <- now +. rtt;
      let cwnd = ctx.Cc.get_cwnd () in
      let diff = cwnd *. (1.0 -. (st.base_rtt_s /. rtt)) in
      if Cc.in_slow_start ctx then begin
        if diff > gamma then ctx.Cc.set_ssthresh cwnd (* leave slow start *)
        else ctx.Cc.set_cwnd (Float.min (2.0 *. cwnd) (ctx.Cc.get_ssthresh ()))
      end
      else begin
        let alpha = quota st ctx in
        if diff < alpha then ctx.Cc.set_cwnd (cwnd +. 1.0)
        else if diff > alpha +. 2.0 then
          ctx.Cc.set_cwnd (Float.max Cc.min_cwnd (cwnd -. 1.0))
      end
    end
  in
  let on_loss () =
    Coupled.halve_on_loss ctx;
    (* A loss means the backlog estimate was stale: forget the epoch. *)
    st.next_adjust_s <- ctx.Cc.now_s () +. ctx.Cc.srtt_s ()
  in
  {
    Cc.name = "wvegas";
    on_ack;
    on_loss;
    on_rto = (fun () -> Coupled.collapse_on_rto ctx);
  }

let factory ctx = factory_with () ctx
