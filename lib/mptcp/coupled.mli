(** Shared arithmetic for coupled congestion controllers.

    All quantities are in MSS units (windows) and seconds (RTTs), the
    conventions of RFC 6356 and the OLIA/BALIA papers.  Every sum and
    max runs over the "active" slots of the connection's flat
    {!Tcp.Cc.group}: subflows that have not yet sent anything are
    excluded (they would otherwise contribute a bogus initial window to
    the coupling sums), falling back to every slot when none is
    established yet (connection start-up).  The folds iterate the
    group's unboxed float arrays directly — nothing is filtered,
    copied or boxed per ACK. *)

val use : Tcp.Cc.group -> int -> bool
(** Whether slot [i] participates in the coupling sums. *)

val active_count : Tcp.Cc.group -> int
(** Number of participating slots, O(1). *)

val rate_sum : Tcp.Cc.group -> float
(** [Σ_p w_p / rtt_p]. *)

val max_rate2 : Tcp.Cc.group -> float
(** [max_p w_p / rtt_p²]. *)

val max_rate : Tcp.Cc.group -> float
(** [max_p w_p / rtt_p]. *)

val total_cwnd : Tcp.Cc.group -> float

val halve_on_loss : Tcp.Cc.ctx -> unit
(** The standard multiplicative decrease shared by LIA/OLIA/EWTCP:
    [ssthresh = cwnd/2] (floored at {!Cc.min_cwnd}), [cwnd = ssthresh]. *)

val collapse_on_rto : Tcp.Cc.ctx -> unit
(** [ssthresh = cwnd/2], [cwnd = 1]. *)
