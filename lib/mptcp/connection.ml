type config = {
  sender : Tcp.Sender.config;
  scheduler : Scheduler.policy;
  send_buffer : int option;
  join_delay : Engine.Time.t;
  start_jitter : Engine.Time.t;
  delayed_ack : bool;
  reinjection : bool;
  rto_cap : int option;
}

let default_config =
  {
    sender = Tcp.Sender.default_config;
    scheduler = Scheduler.Min_rtt;
    send_buffer = None;
    join_delay = Engine.Time.ms 10;
    start_jitter = Engine.Time.zero;
    delayed_ack = false;
    reinjection = false;
    rto_cap = None;
  }

type subflow = {
  index : int;
  tag : Packet.tag;
  path : Netgraph.Path.t;
  mutable sender : Tcp.Sender.t option; (* set during establishment *)
  mutable receiver : Tcp.Receiver.t option;
  mutable joined : bool; (* false until the subflow's start time *)
  mutable rx_bytes : int;
  mutable cursor : int; (* Redundant scheduler: private stream position *)
}

type monitor_event =
  | Sched_grant of { subflow : int; dseq : int; len : int }
  | Sched_defer of { subflow : int; preferred : int option }
  | Reinjected of { subflow : int; dseq : int; len : int; owner : int }
  | Subflow_state of { subflow : int; active : bool }

type t = {
  sched : Engine.Sched.t;
  config : config;
  algorithm : Algorithm.t;
  subflows : subflow array;
  reassembly : Reassembly.t;
  total_bytes : int option;
  start_at : Engine.Time.t;
  rr_cursor : int ref;
  mutable next_dseq : int;
  mutable data_ack_rx : int; (* highest DATA_ACK seen by the sender side *)
  (* Which subflow a connection-level chunk was (last) mapped to, for
     reinjection; entries below data_ack_rx are garbage-collected. *)
  chunk_owner : (int, int * int) Hashtbl.t; (* dseq -> owner index, len *)
  liveness : Path_manager.Liveness.t;
  mutable pending : (int * int * int) list;
      (* (dseq, len, dead owner) chunks orphaned by a deactivation,
         ascending by dseq; drained by live subflows before new data *)
  mutable reinjections : int;
  mutable completed_at : Engine.Time.t option;
  mutable monitor : (monitor_event -> unit) option;
}

(* Chunk ownership is needed both for opportunistic reinjection and to
   find what a freshly-dead subflow was carrying. *)
let track_owners t = t.config.reinjection || t.config.rto_cap <> None

let emit t ev = match t.monitor with None -> () | Some f -> f ev

let sender_exn sf =
  match sf.sender with Some s -> s | None -> assert false

let window_space sender =
  let w =
    int_of_float (Tcp.Sender.cwnd sender *. float_of_int (Tcp.Sender.mss sender))
  in
  max 0 (w - Tcp.Sender.in_flight_bytes sender)

let candidates t =
  Array.map
    (fun sf ->
      let s = sender_exn sf in
      {
        Scheduler.index = sf.index;
        srtt_s =
          (match Tcp.Sender.srtt s with
          | Some v -> Engine.Time.to_float_s v
          | None -> 0.01);
        (* A subflow that has not joined yet, or whose path is dead,
           must never attract data. *)
        window_space =
          (if sf.joined && Path_manager.Liveness.is_active t.liveness ~tag:sf.tag
           then window_space s
           else 0);
      })
    t.subflows

let conn_window_open t =
  match t.config.send_buffer with
  | None -> true
  | Some cap -> t.next_dseq - t.data_ack_rx < cap

let gc_chunk_owners t =
  if Hashtbl.length t.chunk_owner > 64 then
    Hashtbl.iter
      (fun dseq _ -> if dseq < t.data_ack_rx then Hashtbl.remove t.chunk_owner dseq)
      (Hashtbl.copy t.chunk_owner)

(* Opportunistic reinjection (Raiciu et al., NSDI 2012): when the
   connection-level window blocks subflow [sf], re-send the blocking
   chunk (the first un-data-acked one) on [sf] and penalize the subflow
   that originally carried it. *)
let reinject t sf =
  match Hashtbl.find_opt t.chunk_owner t.data_ack_rx with
  | Some (owner, len) when owner <> sf.index ->
    Hashtbl.replace t.chunk_owner t.data_ack_rx (sf.index, len);
    t.reinjections <- t.reinjections + 1;
    emit t (Reinjected { subflow = sf.index; dseq = t.data_ack_rx; len; owner });
    Tcp.Sender.penalize (sender_exn t.subflows.(owner));
    Some { Tcp.Sender.dss = Some { Packet.dseq = t.data_ack_rx; dlen = len };
           len }
  | Some _ | None -> None

let remaining t ~from =
  match t.total_bytes with
  | None -> max_int
  | Some total -> total - from

let subflow_is_active t sf =
  Path_manager.Liveness.is_active t.liveness ~tag:sf.tag

(* Hand [sf] the oldest chunk orphaned by a subflow death, if any.
   These are already-mapped connection-level bytes, so they bypass the
   connection window (re-sending them is what un-blocks it). *)
let grant_pending t sf ~max_len =
  let rec pop () =
    match t.pending with
    | [] -> None
    | (dseq, len, owner) :: rest ->
      if dseq + len <= t.data_ack_rx then begin
        (* Already delivered another way (e.g. a redundant copy). *)
        t.pending <- rest;
        pop ()
      end
      else begin
        let granted = min len max_len in
        t.pending <-
          (if granted < len then (dseq + granted, len - granted, owner) :: rest
           else rest);
        Hashtbl.replace t.chunk_owner dseq (sf.index, granted);
        t.reinjections <- t.reinjections + 1;
        emit t (Reinjected { subflow = sf.index; dseq; len = granted; owner });
        Some
          { Tcp.Sender.dss = Some { Packet.dseq; dlen = granted };
            len = granted }
      end
  in
  pop ()

(* Data source for one subflow: consulted by its sender whenever the
   congestion window opens. *)
let source t sf ~max_len =
  if not (subflow_is_active t sf) then None
  else
    match t.config.scheduler with
  | Scheduler.Redundant ->
    let len = min max_len (remaining t ~from:sf.cursor) in
    if len <= 0 then None
    else begin
      let dseq = sf.cursor in
      sf.cursor <- dseq + len;
      emit t (Sched_grant { subflow = sf.index; dseq; len });
      Some { Tcp.Sender.dss = Some { Packet.dseq; dlen = len }; len }
    end
  | Scheduler.Min_rtt | Scheduler.Round_robin ->
    (match grant_pending t sf ~max_len with
    | Some _ as g -> g
    | None ->
    let len = min max_len (remaining t ~from:t.next_dseq) in
    if len <= 0 then None
    else if not (conn_window_open t) then
      if t.config.reinjection then reinject t sf else None
    else begin
      match
        Scheduler.decide t.config.scheduler ~cursor:t.rr_cursor
          ~requester:sf.index (candidates t)
      with
      | Scheduler.Grant ->
        let dseq = t.next_dseq in
        t.next_dseq <- dseq + len;
        if track_owners t then begin
          gc_chunk_owners t;
          Hashtbl.replace t.chunk_owner dseq (sf.index, len)
        end;
        emit t (Sched_grant { subflow = sf.index; dseq; len });
        Some { Tcp.Sender.dss = Some { Packet.dseq; dlen = len }; len }
      | Scheduler.Defer preferred ->
        emit t (Sched_defer { subflow = sf.index; preferred });
        (match preferred with
        | Some j
          when j <> sf.index && t.subflows.(j).joined
               && subflow_is_active t t.subflows.(j) ->
          (* Hand the transmission opportunity to the preferred subflow,
             outside the requester's send loop. *)
          ignore
            (Engine.Sched.after t.sched Engine.Time.zero (fun () ->
                 Tcp.Sender.kick (sender_exn t.subflows.(j))))
        | Some _ | None -> ());
        None
    end)

(* Wake every live joined subflow (except [but]) so orphaned chunks and
   freed window get picked up outside the current call stack. *)
let kick_live t ?(but = -1) () =
  Array.iter
    (fun sf ->
      if sf.index <> but && sf.joined && subflow_is_active t sf then
        ignore
          (Engine.Sched.after t.sched Engine.Time.zero (fun () ->
               Tcp.Sender.kick (sender_exn sf))))
    t.subflows

let deactivate_subflow t i =
  let sf = t.subflows.(i) in
  if Path_manager.Liveness.deactivate t.liveness ~tag:sf.tag then begin
    emit t (Subflow_state { subflow = i; active = false });
    (* Orphan the chunks the dead subflow was carrying: everything it
       owns at or above the connection-level cumulative ACK must be
       re-sent by a live subflow. *)
    let orphans = ref [] in
    Hashtbl.iter
      (fun dseq (owner, len) ->
        if owner = i && dseq + len > t.data_ack_rx then
          orphans := (dseq, len, owner) :: !orphans)
      t.chunk_owner;
    t.pending <-
      List.merge
        (fun (a, _, _) (b, _, _) -> compare a b)
        (List.sort (fun (a, _, _) (b, _, _) -> compare a b) !orphans)
        t.pending;
    kick_live t ~but:i ()
  end

let reactivate_subflow t i =
  let sf = t.subflows.(i) in
  if Path_manager.Liveness.reactivate t.liveness ~tag:sf.tag then begin
    emit t (Subflow_state { subflow = i; active = true });
    (match sf.sender with
    | Some s ->
      (* a stale timeout run from before the repair must not re-trip
         the rto_cap on the next (backed-off) expiry *)
      Tcp.Sender.forgive_timeouts s;
      if sf.joined then
        ignore
          (Engine.Sched.after t.sched Engine.Time.zero (fun () ->
               Tcp.Sender.kick s))
    | None -> ())
  end

let establish ~net ~src ~dst ~conn ~paths ~cc ?(config = default_config)
    ?rng ?total_bytes ?(start_at = Engine.Time.zero) () =
  if paths = [] then invalid_arg "Connection.establish: no paths";
  let sched = Netsim.Net.sched net in
  Path_manager.install net paths;
  let subflows =
    Array.of_list
      (List.mapi
         (fun index (tag, path) ->
           { index; tag; path; sender = None; receiver = None; joined = false;
             rx_bytes = 0; cursor = 0 })
         paths)
  in
  let t =
    {
      sched;
      config;
      algorithm = cc;
      subflows;
      reassembly = Reassembly.create ();
      total_bytes;
      start_at;
      rr_cursor = ref 0;
      next_dseq = 0;
      data_ack_rx = 0;
      chunk_owner = Hashtbl.create 64;
      liveness = Path_manager.Liveness.create paths;
      pending = [];
      reinjections = 0;
      completed_at = None;
      monitor = None;
    }
  in
  let fresh_id () = Netsim.Net.fresh_packet_id net in
  let pool = Netsim.Net.pool net in
  (* One flat coupled-CC group for the whole connection, refreshed in
     place from each subflow's sender — the per-ACK sibling snapshot
     this replaces allocated a record array every time a coupled
     controller looked around. *)
  let cc_group = Tcp.Cc.group_create (Array.length t.subflows) in
  let group () =
    Array.iteri
      (fun i sf -> Tcp.Sender.sync_group_slot (sender_exn sf) cc_group i)
      t.subflows;
    cc_group
  in
  let src_node = Tcp.Endpoint.node src and dst_node = Tcp.Endpoint.node dst in
  Array.iter
    (fun sf ->
      (* Receiver side. *)
      let receiver =
        Tcp.Receiver.create ~sched ~conn ~subflow:sf.index ~addr:dst_node
          ~peer:src_node ~tag:sf.tag ~fresh_id
          ~transmit:(fun p -> Netsim.Net.inject net ~at:dst_node p)
          ~pool
          ~on_deliver:(fun ~seq:_ ~len ~dss ->
            sf.rx_bytes <- sf.rx_bytes + len;
            (match dss with
            | Some { Packet.dseq; dlen } ->
              Reassembly.insert t.reassembly ~dseq ~len:dlen
            | None ->
              (* MPTCP data always carries a mapping. *)
              assert false);
            match t.total_bytes with
            | Some total
              when Reassembly.delivered_bytes t.reassembly >= total
                   && t.completed_at = None ->
              t.completed_at <- Some (Engine.Sched.now sched)
            | Some _ | None -> ())
          ~data_ack:(fun () -> Reassembly.next_expected t.reassembly)
          ~delayed_ack:config.delayed_ack ()
      in
      sf.receiver <- Some receiver;
      Tcp.Endpoint.register dst ~conn ~subflow:sf.index (fun p ->
          Tcp.Receiver.handle_data receiver p);
      (* Sender side. *)
      let sender =
        Tcp.Sender.create ~sched ~config:config.sender ~conn ~subflow:sf.index
          ~src:src_node ~dst:dst_node ~tag:sf.tag ~fresh_id
          ~transmit:(fun p -> Netsim.Net.inject net ~at:src_node p)
          ~pool
          ~source:(fun ~max_len -> source t sf ~max_len)
          ~cc:(Algorithm.factory cc) ~group
          ~self_index:(fun () -> sf.index)
          ()
      in
      sf.sender <- Some sender;
      (match config.rto_cap with
      | Some cap ->
        Tcp.Sender.set_on_timeout sender
          (Some
             (fun () ->
               if Tcp.Sender.consecutive_timeouts sender >= cap then
                 deactivate_subflow t sf.index))
      | None -> ());
      Tcp.Endpoint.register src ~conn ~subflow:sf.index (fun p ->
          let tcp = Packet.tcp_exn p in
          let advanced = tcp.Packet.data_ack > t.data_ack_rx in
          if advanced then t.data_ack_rx <- tcp.Packet.data_ack;
          Tcp.Sender.handle_ack sender tcp;
          (* Freed connection-level buffer may unblock other subflows. *)
          if advanced && t.config.send_buffer <> None then
            Array.iter
              (fun other ->
                if other.index <> sf.index then
                  Tcp.Sender.kick (sender_exn other))
              t.subflows))
    subflows;
  (* Default subflow starts at [start_at]; the rest join later.  The
     per-subflow jitter desynchronises the slow starts, as scheduling
     noise would on a real host. *)
  let jitter () =
    match rng with
    | Some rng when Engine.Time.( > ) config.start_jitter Engine.Time.zero ->
      Engine.Rng.uniform_time rng ~lo:Engine.Time.zero ~hi:config.start_jitter
    | Some _ | None -> Engine.Time.zero
  in
  Array.iter
    (fun sf ->
      let when_ =
        Engine.Time.add (jitter ())
          (if sf.index = 0 then start_at
           else Engine.Time.add start_at config.join_delay)
      in
      ignore
        (Engine.Sched.at sched when_ (fun () ->
             sf.joined <- true;
             Tcp.Sender.kick (sender_exn sf))))
    subflows;
  t

let subflow_count t = Array.length t.subflows
let subflow_sender t i = sender_exn t.subflows.(i)

let subflow_receiver t i =
  match t.subflows.(i).receiver with Some r -> r | None -> assert false

let subflow_tag t i = t.subflows.(i).tag
let subflow_path t i = t.subflows.(i).path
let subflow_rx_bytes t i = t.subflows.(i).rx_bytes
let delivered_bytes t = Reassembly.delivered_bytes t.reassembly
let data_ack t = Reassembly.next_expected t.reassembly
let reassembly_buffered t = Reassembly.buffered_bytes t.reassembly
let completed_at t = t.completed_at
let reinjections t = t.reinjections
let cc t = t.algorithm
let data_ack_rx t = t.data_ack_rx
let liveness t = t.liveness
let subflow_active t i = subflow_is_active t t.subflows.(i)
let set_monitor t m = t.monitor <- m
let monitor t = t.monitor

(* Distinct connection-level bytes handed to any subflow so far.  The
   Redundant scheduler maps per-subflow cursors over the same stream, so
   the union of mapped ranges is the largest cursor, not next_dseq. *)
let mapped_bytes t =
  Array.fold_left (fun acc sf -> max acc sf.cursor) t.next_dseq t.subflows

let total_throughput_bps t ~now =
  let dt = Engine.Time.to_float_s (Engine.Time.diff now t.start_at) in
  if dt <= 0.0 then 0.0
  else float_of_int (delivered_bytes t * 8) /. dt
