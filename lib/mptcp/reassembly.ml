(* Out-of-order ranges live on sorted parallel arrays (starts/ends),
   disjoint and non-adjacent, all strictly above [next].  An insert
   binary-searches for the overlap window and splices with Array.blit —
   no per-insert map rebuild, no closure, no boxed bindings.  The arrays
   double on demand and never shrink (the range count is bounded by the
   number of concurrent holes, a handful in practice). *)

type t = {
  mutable next : int;
  mutable starts : int array;
  mutable ends_ : int array;
  mutable n : int; (* live range count *)
  mutable buffered : int; (* sum of (ends_.(i) - starts.(i)) *)
}

let create () =
  { next = 0; starts = Array.make 8 0; ends_ = Array.make 8 0; n = 0;
    buffered = 0 }

let grow t =
  let cap = 2 * Array.length t.starts in
  let s = Array.make cap 0 and e = Array.make cap 0 in
  Array.blit t.starts 0 s 0 t.n;
  Array.blit t.ends_ 0 e 0 t.n;
  t.starts <- s;
  t.ends_ <- e

(* First index whose range could touch [lo, hi): smallest i with
   ends_.(i) >= lo (ranges sorted by start, disjoint, so also by end). *)
let lower_bound t lo =
  let a = ref 0 and b = ref t.n in
  while !a < !b do
    let mid = (!a + !b) / 2 in
    if t.ends_.(mid) < lo then a := mid + 1 else b := mid
  done;
  !a

let insert t ~dseq ~len =
  if len <= 0 then invalid_arg "Reassembly.insert: len must be positive";
  if dseq < 0 then invalid_arg "Reassembly.insert: negative dseq";
  let lo = max dseq t.next and hi = dseq + len in
  if hi > t.next then begin
    (* Overlapping-or-adjacent window: ranges i in [i0, i1) with
       starts.(i) <= hi && ends_.(i) >= lo. *)
    let i0 = lower_bound t lo in
    let i1 = ref i0 in
    while !i1 < t.n && t.starts.(!i1) <= hi do incr i1 done;
    let i1 = !i1 in
    let lo = ref lo and hi = ref hi in
    for i = i0 to i1 - 1 do
      if t.starts.(i) < !lo then lo := t.starts.(i);
      if t.ends_.(i) > !hi then hi := t.ends_.(i);
      t.buffered <- t.buffered - (t.ends_.(i) - t.starts.(i))
    done;
    if !lo <= t.next then begin
      (* Contiguous with the delivered prefix: advance [next].  Stored
         ranges all start above the old [next]; any absorbed ones were
         inside the window (non-adjacent invariant), so nothing below
         index i1 survives. *)
      if !hi > t.next then t.next <- !hi;
      if i1 > i0 then begin
        Array.blit t.starts i1 t.starts i0 (t.n - i1);
        Array.blit t.ends_ i1 t.ends_ i0 (t.n - i1);
        t.n <- t.n - (i1 - i0)
      end
    end
    else begin
      t.buffered <- t.buffered + (!hi - !lo);
      if i1 - i0 = 1 then begin
        (* Common case: extend one range in place. *)
        t.starts.(i0) <- !lo;
        t.ends_.(i0) <- !hi
      end
      else if i1 = i0 then begin
        (* Fresh gap: open a slot at i0. *)
        if t.n = Array.length t.starts then grow t;
        Array.blit t.starts i0 t.starts (i0 + 1) (t.n - i0);
        Array.blit t.ends_ i0 t.ends_ (i0 + 1) (t.n - i0);
        t.starts.(i0) <- !lo;
        t.ends_.(i0) <- !hi;
        t.n <- t.n + 1
      end
      else begin
        (* Merged several ranges into one: keep slot i0, close the rest. *)
        t.starts.(i0) <- !lo;
        t.ends_.(i0) <- !hi;
        Array.blit t.starts i1 t.starts (i0 + 1) (t.n - i1);
        Array.blit t.ends_ i1 t.ends_ (i0 + 1) (t.n - i1);
        t.n <- t.n - (i1 - i0 - 1)
      end
    end
  end

let next_expected t = t.next
let delivered_bytes t = t.next
let buffered_bytes t = t.buffered
let gap_count t = t.n
