open Tcp

let alpha ctx =
  let g = ctx.Cc.group () in
  let x_r = ctx.Cc.get_cwnd () /. ctx.Cc.srtt_s () in
  if x_r <= 0.0 then 1.0 else Float.max 1.0 (Coupled.max_rate g /. x_r)

let factory (ctx : Cc.ctx) =
  let on_ack ~acked =
    if not (Cc.slow_start_ack ctx ~acked) then begin
      let g = ctx.Cc.group () in
      let sum = Coupled.rate_sum g in
      if sum > 0.0 then begin
        let w = ctx.Cc.get_cwnd () in
        let rtt = ctx.Cc.srtt_s () in
        let a = alpha ctx in
        let x_r = w /. rtt in
        let inc =
          x_r /. rtt /. (sum *. sum) *. ((1.0 +. a) /. 2.0)
          *. ((4.0 +. a) /. 5.0)
        in
        let acked_mss = float_of_int acked /. float_of_int ctx.Cc.mss in
        let inc = Float.min inc (1.0 /. w) in
        ctx.Cc.set_cwnd (w +. (inc *. acked_mss))
      end
    end
  in
  let on_loss () =
    let w = ctx.Cc.get_cwnd () in
    let a = alpha ctx in
    let next = Float.max Cc.min_cwnd (w -. (w /. 2.0 *. Float.min a 1.5)) in
    ctx.Cc.set_ssthresh next;
    ctx.Cc.set_cwnd next
  in
  {
    Cc.name = "balia";
    on_ack;
    on_loss;
    on_rto = (fun () -> Coupled.collapse_on_rto ctx);
  }
