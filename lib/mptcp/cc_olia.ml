open Tcp

let eps = 1e-9

(* Index sets over the group's slots (only established paths are
   considered, plus [self] so the deciding path always sees itself).
   Two flat passes over the group arrays: one caching each slot's
   loss-interval quality while finding the best quality and the max
   window, one counting B\M and M membership — the old version
   materialised the B\M and M sets as lists per ACK.

   The float scratch ([g.scratch] aggregates, [g.qualities] per-slot)
   lives in the group so the passes neither box floats (float-array
   stores are unboxed without flambda) nor race between parallel
   scenario runs on pool domains.  The counters are plain local int /
   bool refs: non-escaping immediate refs compile to mutable stack
   slots, so they cost nothing. *)
let alpha_for (g : Cc.group) ~self =
  let n = g.Cc.n in
  let cwnds = g.Cc.cwnds
  and srtts = g.Cc.srtts
  and lis = g.Cc.loss_intervals
  and est = g.Cc.established in
  let qw = g.Cc.scratch and qs = g.Cc.qualities in
  qw.(0) <- neg_infinity;
  qw.(1) <- neg_infinity;
  for i = 0 to n - 1 do
    if est.(i) || i = self then begin
      let l = lis.(i) in
      let q = l *. l /. srtts.(i) in
      qs.(i) <- q;
      if q > qw.(0) then qw.(0) <- q;
      if cwnds.(i) > qw.(1) then qw.(1) <- cwnds.(i)
    end
  done;
  let bq = qw.(0) -. eps and mw = qw.(1) -. eps in
  let n_best = ref 0 and n_max = ref 0 in
  let self_best = ref false and self_max = ref false in
  for i = 0 to n - 1 do
    if est.(i) || i = self then begin
      let in_b = qs.(i) >= bq in
      let in_m = cwnds.(i) >= mw in
      if in_b && not in_m then begin
        incr n_best;
        if i = self then self_best := true
      end;
      if in_m then begin
        incr n_max;
        if i = self then self_max := true
      end
    end
  done;
  let n_f = float_of_int n in
  if !n_best = 0 then 0.0
  else if !self_best then 1.0 /. (n_f *. float_of_int !n_best)
  else if !self_max then -1.0 /. (n_f *. float_of_int !n_max)
  else 0.0

let factory (ctx : Cc.ctx) =
  let on_ack ~acked =
    if not (Cc.slow_start_ack ctx ~acked) then begin
      let g = ctx.Cc.group () in
      let self = ctx.Cc.self_index () in
      let denom = Coupled.rate_sum g in
      let w = ctx.Cc.get_cwnd () in
      let rtt = ctx.Cc.srtt_s () in
      let coupled =
        if denom <= 0.0 then 0.0
        else w /. (rtt *. rtt) /. (denom *. denom)
      in
      let alpha = alpha_for g ~self in
      let acked_mss = float_of_int acked /. float_of_int ctx.Cc.mss in
      let inc = coupled +. (alpha /. w) in
      (* The increase may be negative on max-window paths; never shrink
         below the floor, and never faster than 1 MSS per MSS acked. *)
      let inc = Float.min inc (1.0 /. w) in
      ctx.Cc.set_cwnd (Float.max Cc.min_cwnd (w +. (inc *. acked_mss)))
    end
  in
  {
    Cc.name = "olia";
    on_ack;
    on_loss = (fun () -> Coupled.halve_on_loss ctx);
    on_rto = (fun () -> Coupled.collapse_on_rto ctx);
  }
