; Two disjoint paths from a to z: a slow primary through p1 and a fast
; backup through p2.  Used by failover_xp.sexp (primary killed
; mid-transfer) and lossy_xp.sexp (primary made 10% lossy).
(topology
 (nodes a p1 p2 z)
 (links
  (a p1 (mbps 10) (delay-ms 5))
  (p1 z (mbps 10) (delay-ms 5))
  (a p2 (mbps 90) (delay-ms 5))
  (p2 z (mbps 90) (delay-ms 5))))
