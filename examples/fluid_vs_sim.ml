(* Fluid model vs packet simulator, side by side: solve the paper
   scenario's ODE equilibrium for CUBIC, LIA and OLIA (microseconds),
   run the packet-level simulator on the same specs (seconds), and
   print one table per controller lining up fluid, LP and simulated
   per-path rates.

     dune exec examples/fluid_vs_sim.exe *)

let () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default:2 topo in
  print_endline
    "fluid equilibrium vs packet simulation, paper network (LP optimum 90 \
     Mbps)";
  print_newline ();
  List.iter
    (fun cc ->
      let spec =
        Core.Scenario.make ~topo ~paths ~cc ~duration:(Engine.Time.s 8)
          ~sampling:(Engine.Time.ms 100) ()
      in
      (* [against_sim] = fluid solve + LP + a full simulator run of the
         same spec; the per-path rows stay in spec order throughout. *)
      match Validate.against_sim spec with
      | Error msg ->
        Printf.printf "%s: %s\n\n" (Mptcp.Algorithm.name cc) msg
      | Ok rep -> Format.printf "%a@.@." Validate.pp rep)
    Mptcp.Algorithm.[ Cubic; Lia; Olia ];
  print_endline
    "(The fluid totals reproduce the paper's ordering analytically: \
     uncoupled";
  print_endline
    " CUBIC overshares the 40 Mbps bottleneck and lands lowest, LIA \
     recovers";
  print_endline
    " most of the gap, OLIA attains the LP optimum.  See doc/FLUID.md.)"
