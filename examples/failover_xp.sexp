; Primary-path kill mid-transfer: the resilience headline.  An 8 MB
; MPTCP transfer over both paths; at 0.5 s the primary's access link is
; cut.  With (rto-cap 2) the sender declares the subflow dead after two
; silent retransmission timeouts and re-sends its stranded chunks on the
; backup, so the transfer still completes.  Compare tcp_killed_xp.sexp,
; where a single-path flow pinned to the primary simply stalls.
;
;   dune exec bin/mptcp_sim.exe -- run -t examples/failover_topo.sexp \
;     -x examples/failover_xp.sexp
(experiment
 (cc lia)
 (scheduler min-rtt)
 (duration-s 3)
 (sampling-ms 100)
 (seed 1)
 (total-mb 8)
 (rto-cap 2)
 (limit-pkts 64)
 (paths (a p1 z) (a p2 z))
 (events
  (at-s 0.5 (link-down a p1))))
