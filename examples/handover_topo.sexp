; A phone with WiFi and LTE access to the same server — the classic
; MPTCP mobility setup.  WiFi is fast with a short RTT, LTE slower with
; a long one.  Used by handover_xp.sexp.
(topology
 (nodes phone wifi lte server)
 (links
  (phone wifi (mbps 50) (delay-ms 3))
  (phone lte (mbps 30) (delay-ms 25))
  (wifi server (mbps 100) (delay-ms 5))
  (lte server (mbps 100) (delay-ms 5))))
