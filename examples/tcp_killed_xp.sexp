; The single-path contrast to failover_xp.sexp: the same transfer pinned
; to the primary path alone.  When the link dies at 0.5 s there is
; nowhere to reroute — delivery stops and the transfer never completes.
;
;   dune exec bin/mptcp_sim.exe -- run -t examples/failover_topo.sexp \
;     -x examples/tcp_killed_xp.sexp
(experiment
 (cc reno)
 (duration-s 3)
 (sampling-ms 100)
 (seed 1)
 (total-mb 8)
 (limit-pkts 64)
 (paths (a p1 z))
 (events
  (at-s 0.5 (link-down a p1))))
