; WiFi -> LTE handover: the phone walks away from the access point.
; From 1 s the WiFi link's capacity ramps down to 2 Mbps over 1.5 s
; while its delay jumps, and at 3 s the association drops entirely.
; The coupled controller shifts the transfer onto LTE as WiFi degrades,
; and the rto-cap failover rescues whatever was stranded when the link
; finally dies.
;
;   dune exec bin/mptcp_sim.exe -- run -t examples/handover_topo.sexp \
;     -x examples/handover_xp.sexp
(experiment
 (cc lia)
 (scheduler min-rtt)
 (duration-s 5)
 (sampling-ms 100)
 (seed 1)
 (total-mb 10)
 (rto-cap 2)
 (limit-pkts 64)
 (paths (phone wifi server) (phone lte server))
 (events
  (at-s 1 (capacity-ramp phone wifi (mbps 2) (over-s 1.5) (steps 6)))
  (at-s 1.8 (delay-set phone wifi (ms 40)))
  (at-s 3 (link-down phone wifi))))
