; The 10% lossy-link regime: from 0.5 s the primary path drops every
; tenth packet at random.  Loss-based congestion control collapses on
; that subflow (the square-root-of-p law), so nearly all throughput
; migrates to the clean backup — without any explicit failover.
;
;   dune exec bin/mptcp_sim.exe -- run -t examples/failover_topo.sexp \
;     -x examples/lossy_xp.sexp
(experiment
 (cc lia)
 (scheduler min-rtt)
 (duration-s 4)
 (sampling-ms 100)
 (seed 1)
 (limit-pkts 64)
 (paths (a p1 z) (a p2 z))
 (events
  (at-s 0.5 (loss-set a p1 0.1))))
