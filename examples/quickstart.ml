(* Quickstart: build a two-path network, run an MPTCP bulk transfer over
   it, and read out the throughput — the smallest end-to-end use of the
   library.

     dune exec examples/quickstart.exe

   The network is a diamond: two fully disjoint 20 Mbps paths from [a]
   to [b], so MPTCP with any coupled congestion control should aggregate
   close to 40 Mbps. *)

let () =
  (* 1. Describe the topology. *)
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let up = Netgraph.Topology.add_node b "up" in
  let down = Netgraph.Topology.add_node b "down" in
  let z = Netgraph.Topology.add_node b "z" in
  let link u v =
    ignore
      (Netgraph.Topology.add_link b ~u ~v
         ~capacity_bps:(Netgraph.Topology.mbps 20)
         ~delay:(Engine.Time.ms 5))
  in
  link a up;
  link up z;
  link a down;
  link down z;
  let topo = Netgraph.Topology.build b in

  (* 2. Pick the two paths and tag them (tag = subflow route). *)
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "a"; "up"; "z" ];
        Netgraph.Path.of_names topo [ "a"; "down"; "z" ];
      ]
  in

  (* 3. Build a scenario — with the metrics registry attached — and
     run it. *)
  let spec =
    Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Lia
      ~duration:(Engine.Time.s 10) ~sampling:(Engine.Time.ms 100)
      ~obs:{ Obs.Collect.default_conf with trace = false }
      ()
  in
  let result = Core.Scenario.run spec in

  (* 4. Inspect the outcome. *)
  Format.printf "LP optimum for this path set: %.1f Mbps@."
    (Core.Scenario.optimal_total_mbps result);
  Format.printf "measured (tail mean):        %.1f Mbps@."
    (Core.Scenario.tail_mean_mbps result);
  List.iter
    (fun (tag, v) -> Format.printf "  subflow on tag %d: %.1f Mbps@." tag v)
    (Core.Scenario.per_path_tail_mbps result);
  Format.printf "%a@." Core.Scenario.pp_summary result;

  (* 5. The end-of-run metrics snapshot (see doc/OBSERVABILITY.md). *)
  match result.Core.Scenario.obs with
  | None -> ()
  | Some o ->
    let m = Option.get (Obs.Collect.metrics o) in
    (match List.rev (Obs.Metrics.snapshots m) with
    | [] -> ()
    | last :: _ ->
      Format.printf "final metrics (t = %.1f s):@."
        (float_of_int last.Obs.Metrics.sim_ns /. 1e9);
      List.iter
        (fun (name, v) -> Format.printf "  %-28s %.0f@." name v)
        (List.filter
           (fun (name, _) ->
             List.mem name
               [
                 "tcp.segments_sent"; "tcp.retransmits";
                 "netsim.pkts_dropped"; "mptcp.delivered_bytes";
               ])
           last.Obs.Metrics.values))
