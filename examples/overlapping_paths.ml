(* The paper's demo, end to end: the Fig. 1 network with three pairwise
   overlapping paths, the throughput LP, and the convergence of CUBIC,
   LIA and OLIA towards (or away from) the 90 Mbps optimum.

     dune exec examples/overlapping_paths.exe *)

let hr () = print_endline (String.make 72 '-')

let () =
  (* The network and the optimization problem MPTCP implicitly faces. *)
  let f1 = Core.Figures.fig1 () in
  print_string f1.Core.Figures.chart;
  hr ();
  let f1c = Core.Figures.fig1c () in
  print_string f1c.Core.Figures.chart;
  hr ();

  (* Measure the three congestion-control algorithms the paper compares.
     Path 2 (the 3-hop route) is the default subflow, as in the paper. *)
  let topo = Core.Paper_net.topology () in
  List.iter
    (fun cc ->
      let paths = Core.Paper_net.tagged_paths ~default:2 topo in
      let spec =
        Core.Scenario.make ~topo ~paths ~cc ~duration:(Engine.Time.s 8)
          ~sampling:(Engine.Time.ms 100)
          ~obs:{ Obs.Collect.default_conf with trace = false }
          ()
      in
      let r = Core.Scenario.run spec in
      let named =
        List.map
          (fun (tag, s) -> (Printf.sprintf "path%d" tag, s))
          r.Core.Scenario.per_tag
        @ [ ("total", r.Core.Scenario.total) ]
      in
      print_string
        (Measure.Render.ascii_chart ~y_max:100.0
           ~title:
             (Printf.sprintf "MPTCP-%s (optimum %.0f Mbps)"
                (String.uppercase_ascii (Mptcp.Algorithm.name cc))
                (Core.Scenario.optimal_total_mbps r))
           named);
      Format.printf
        "tail mean %.1f Mbps; time to optimum %s; per path: %s@."
        (Core.Scenario.tail_mean_mbps r)
        (match Core.Scenario.time_to_optimum_s r with
        | Some t -> Printf.sprintf "%.2f s" t
        | None -> "not within this run")
        (String.concat ", "
           (List.map
              (fun (tag, v) -> Printf.sprintf "x%d=%.1f" tag v)
              (Core.Scenario.per_path_tail_mbps r)));
      (* One line of sender-side counters from the metrics registry —
         the retransmit count is the loss-epoch story behind each
         chart (doc/OBSERVABILITY.md). *)
      (match r.Core.Scenario.obs with
      | None -> ()
      | Some o ->
        let m = Option.get (Obs.Collect.metrics o) in
        (match List.rev (Obs.Metrics.snapshots m) with
        | [] -> ()
        | last :: _ ->
          let v name =
            match List.assoc_opt name last.Obs.Metrics.values with
            | Some x -> int_of_float x
            | None -> 0
          in
          Format.printf
            "metrics: %d segments sent, %d retransmits, %d drops, %d grants/%d defers@."
            (v "tcp.segments_sent") (v "tcp.retransmits")
            (v "netsim.pkts_dropped") (v "mptcp.sched_grants")
            (v "mptcp.sched_defers")));
      hr ())
    Mptcp.Algorithm.[ Cubic; Lia; Olia ]
