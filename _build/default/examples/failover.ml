(* Path failure and recovery — the reliability motivation from the
   paper's introduction: multipath lets end hosts route around failures
   end-to-end.

   Two disjoint paths carry an MPTCP bulk transfer.  At t = 8 s the
   primary path's middle link is cut; at t = 16 s it comes back.  A
   plain TCP flow pinned to the primary path is run alongside for
   contrast: it stalls (exponential RTO backoff) for the whole outage,
   while MPTCP shifts onto the secondary path within a retransmission
   timeout.

     dune exec examples/failover.exe *)

let () =
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let p1 = Netgraph.Topology.add_node b "p1" in
  let p2 = Netgraph.Topology.add_node b "p2" in
  let z = Netgraph.Topology.add_node b "z" in
  let link u v mbps =
    Netgraph.Topology.add_link b ~u ~v
      ~capacity_bps:(Netgraph.Topology.mbps mbps)
      ~delay:(Engine.Time.ms 3)
  in
  let _ = link a p1 30 in
  let primary_mid = link p1 z 30 in
  let _ = link a p2 30 in
  let _ = link p2 z 30 in
  let topo = Netgraph.Topology.build b in

  let sched = Engine.Sched.create () in
  let rng = Engine.Rng.create 9 in
  let net = Netsim.Net.create ~sched ~rng topo in

  let primary = Netgraph.Path.of_names topo [ "a"; "p1"; "z" ] in
  let secondary = Netgraph.Path.of_names topo [ "a"; "p2"; "z" ] in
  let paths = Mptcp.Path_manager.tag_paths [ primary; secondary ] in
  Netsim.Net.install_path net ~tag:7 primary;

  let src = Tcp.Endpoint.create net ~node:a in
  let dst = Tcp.Endpoint.create net ~node:z in
  let capture = Measure.Capture.attach net ~node:z ~conn:1 () in
  let _mptcp =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
      ~cc:Mptcp.Algorithm.Lia ()
  in
  let tcp = Tcp.Flow.start ~src ~dst ~tag:7 ~conn:2 () in

  (* Fail and restore the primary path's middle link. *)
  ignore
    (Engine.Sched.at sched (Engine.Time.s 8) (fun () ->
         Netsim.Net.set_link_up net ~link:primary_mid false));
  ignore
    (Engine.Sched.at sched (Engine.Time.s 16) (fun () ->
         Netsim.Net.set_link_up net ~link:primary_mid true));

  let tcp_marks = ref [] in
  List.iter
    (fun t ->
      ignore
        (Engine.Sched.at sched (Engine.Time.s t) (fun () ->
             tcp_marks := (t, Tcp.Flow.bytes_delivered tcp) :: !tcp_marks)))
    [ 8; 16; 24 ];

  let horizon = Engine.Time.s 24 in
  Engine.Sched.run ~until:horizon sched;

  let per_tag, total =
    Measure.Sampler.per_tag capture ~window:(Engine.Time.ms 250) ~until:horizon
  in
  let named =
    List.map
      (fun (tag, s) -> ((if tag = 1 then "primary" else "secondary"), s))
      per_tag
    @ [ ("total", total) ]
  in
  print_string
    (Measure.Render.ascii_chart
       ~title:"MPTCP across a path failure (primary cut 8s-16s), Mbps" named);
  let mean name s lo hi =
    Printf.printf "  %-22s %5.1f Mbps in [%gs, %gs)\n" name
      (Measure.Series.mean_between s ~from_s:lo ~to_s:hi) lo hi
  in
  let primary_s = List.assoc 1 per_tag and secondary_s = List.assoc 2 per_tag in
  mean "primary before cut" primary_s 2.0 8.0;
  mean "secondary before cut" secondary_s 2.0 8.0;
  mean "primary during cut" primary_s 9.0 16.0;
  mean "secondary during cut" secondary_s 9.0 16.0;
  mean "primary after repair" primary_s 18.0 24.0;
  (match List.sort compare !tcp_marks with
  | [ (_, at8); (_, at16); (_, at24) ] ->
    Printf.printf
      "plain TCP on the primary: %.1f MB by 8s, +%.2f MB during the cut, \
       +%.1f MB after repair\n"
      (float_of_int at8 /. 1e6)
      (float_of_int (at16 - at8) /. 1e6)
      (float_of_int (at24 - at16) /. 1e6)
  | _ -> ());
  Printf.printf "MPTCP delivered %.1f MB in total.\n"
    (float_of_int
       (Measure.Capture.bytes_for_tag capture 1
        + Measure.Capture.bytes_for_tag capture 2)
     /. 1e6)
