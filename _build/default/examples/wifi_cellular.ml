(* The classic MPTCP use case the paper's introduction starts from: a
   phone connected through Wi-Fi (fast, short RTT) and cellular (slower,
   long RTT) at the same time — two fully DISJOINT paths, in contrast to
   the paper's overlapping ones.

   Halfway through the run a neighbour starts a 40 Mbps download that
   congests the Wi-Fi access link; MPTCP's coupled congestion control
   shifts the transfer onto cellular without stalling.

     dune exec examples/wifi_cellular.exe *)

let () =
  let b = Netgraph.Topology.builder () in
  let phone = Netgraph.Topology.add_node b "phone" in
  let wifi_ap = Netgraph.Topology.add_node b "wifi-ap" in
  let lte_gw = Netgraph.Topology.add_node b "lte-gw" in
  let server = Netgraph.Topology.add_node b "server" in
  let neighbour = Netgraph.Topology.add_node b "neighbour" in
  let link u v mbps delay_ms =
    ignore
      (Netgraph.Topology.add_link b ~u ~v
         ~capacity_bps:(Netgraph.Topology.mbps mbps)
         ~delay:(Engine.Time.ms delay_ms))
  in
  link phone wifi_ap 50 3;    (* Wi-Fi access *)
  link phone lte_gw 30 25;    (* LTE access: slower, longer RTT *)
  link wifi_ap server 100 5;
  link lte_gw server 100 5;
  link neighbour wifi_ap 100 1;
  let topo = Netgraph.Topology.build b in

  let sched = Engine.Sched.create () in
  let rng = Engine.Rng.create 7 in
  let net = Netsim.Net.create ~sched ~rng topo in

  (* A download: the server is the sender, so the Wi-Fi access link's
     ap -> phone direction carries the data. *)
  let wifi_path = Netgraph.Path.of_names topo [ "server"; "wifi-ap"; "phone" ] in
  let lte_path = Netgraph.Path.of_names topo [ "server"; "lte-gw"; "phone" ] in
  assert (Netgraph.Path.disjoint wifi_path lte_path);
  let paths = Mptcp.Path_manager.tag_paths [ wifi_path; lte_path ] in

  let src = Tcp.Endpoint.create net ~node:server in
  let dst = Tcp.Endpoint.create net ~node:phone in
  let capture = Measure.Capture.attach net ~node:phone ~conn:1 () in
  let conn =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
      ~cc:Mptcp.Algorithm.Lia ()
  in

  (* The neighbour's download floods the Wi-Fi uplink from t = 10 s.  It
     shares only the wifi-ap -> server side; to squeeze the phone's
     access link we aim it across the AP link itself. *)
  Netsim.Net.install_path net ~tag:99
    (Netgraph.Path.of_names topo [ "neighbour"; "wifi-ap"; "phone" ]);
  let cross =
    Netsim.Traffic.cbr ~net ~src:neighbour ~dst:phone ~tag:99
      ~rate_bps:(Netgraph.Topology.mbps 45)
      ~start:(Engine.Time.s 10) ()
  in

  let horizon = Engine.Time.s 20 in
  Engine.Sched.run ~until:horizon sched;

  let per_tag, total =
    Measure.Sampler.per_tag capture ~window:(Engine.Time.ms 250) ~until:horizon
  in
  let named =
    List.map (fun (tag, s) ->
        ((if tag = 1 then "wifi" else "lte"), s))
      per_tag
    @ [ ("total", total) ]
  in
  print_string
    (Measure.Render.ascii_chart
       ~title:"Wi-Fi + LTE aggregation; Wi-Fi congested from t=10s (Mbps)"
       named);
  let wifi = List.assoc 1 per_tag and lte = List.assoc 2 per_tag in
  Format.printf
    "first half: wifi %.1f / lte %.1f Mbps; second half: wifi %.1f / lte %.1f Mbps@."
    (Measure.Series.mean_between wifi ~from_s:2.0 ~to_s:10.0)
    (Measure.Series.mean_between lte ~from_s:2.0 ~to_s:10.0)
    (Measure.Series.mean_from wifi ~from_s:12.0)
    (Measure.Series.mean_from lte ~from_s:12.0);
  Format.printf "delivered %.1f MB in %.0f s (cross traffic sent %d packets)@."
    (float_of_int (Mptcp.Connection.delivered_bytes conn) /. 1e6)
    (Engine.Time.to_float_s horizon)
    (Netsim.Traffic.packets_sent cross)
