examples/overlapping_paths.mli:
