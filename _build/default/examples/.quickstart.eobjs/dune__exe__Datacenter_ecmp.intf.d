examples/datacenter_ecmp.mli:
