examples/scaling_overlap.mli:
