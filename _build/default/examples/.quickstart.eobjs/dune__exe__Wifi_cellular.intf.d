examples/wifi_cellular.mli:
