examples/overlapping_paths.ml: Core Engine Format List Measure Mptcp Printf String
