examples/quickstart.mli:
