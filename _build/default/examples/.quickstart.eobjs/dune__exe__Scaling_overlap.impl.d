examples/scaling_overlap.ml: Array Core Engine Format Mptcp Netgraph Printf String
