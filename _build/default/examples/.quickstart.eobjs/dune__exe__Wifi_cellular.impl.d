examples/wifi_cellular.ml: Engine Format List Measure Mptcp Netgraph Netsim Tcp
