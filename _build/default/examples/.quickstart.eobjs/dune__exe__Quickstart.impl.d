examples/quickstart.ml: Core Engine Format List Mptcp Netgraph
