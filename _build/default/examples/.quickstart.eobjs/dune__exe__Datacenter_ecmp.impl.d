examples/datacenter_ecmp.ml: Engine Format List Measure Mptcp Netgraph Netsim Printf Tcp
