examples/failover.mli:
