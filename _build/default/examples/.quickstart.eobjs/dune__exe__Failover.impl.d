examples/failover.ml: Engine List Measure Mptcp Netgraph Netsim Printf Tcp
