(* Scaling the paper's construction: n pairwise-overlapping paths.

   The paper's introduction asks how complicated the optimization problem
   MPTCP faces can become.  This example generalises the Fig. 1 network
   to n paths, where every pair shares a dedicated bottleneck
   (C(n,2) coupled constraints), and measures how close each congestion
   controller gets to the LP optimum as n grows.

     dune exec examples/scaling_overlap.exe *)

let () =
  Format.printf
    "n pairwise-overlapping paths; caps 30 + 5(i+j) Mbps per pair@.@.";
  let rows =
    Core.Scaling.sweep ~ns:[ 2; 3; 4 ]
      ~ccs:Mptcp.Algorithm.[ Cubic; Lia; Olia ]
      ~duration:(Engine.Time.s 10) ()
  in
  Format.printf "%a@." Core.Scaling.pp_table rows;
  (* And the paper's own instance through the generator. *)
  let topo, paths =
    Netgraph.Generate.pairwise_overlap ~n:3
      ~cap_bps:Netgraph.Generate.paper_caps ()
  in
  let opt = Netgraph.Constraints.optimum topo paths in
  Format.printf
    "generator with the paper's capacities: optimum %.0f Mbps at (%s) — \
     matches Fig. 1c@."
    (opt.Netgraph.Constraints.total_bps /. 1e6)
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun v -> Printf.sprintf "%.0f" (v /. 1e6))
             opt.Netgraph.Constraints.per_path_bps)))
