(* Datacenter multipath, after Raiciu et al. [4] (the paper's tagging
   reference): a small leaf-spine fabric where ECMP hashing is modelled
   by tags — each tag pins a subflow to one spine.

   One MPTCP connection with 4 subflows (one per spine) is compared with
   a single-path TCP that ECMP happened to hash onto one spine.  A
   background flow collides with one of the spines, so the MPTCP
   aggregate also shows the benefit of moving traffic off the congested
   path with LIA.

     dune exec examples/datacenter_ecmp.exe *)

let build () =
  let b = Netgraph.Topology.builder () in
  let h1 = Netgraph.Topology.add_node b "h1" in
  let h2 = Netgraph.Topology.add_node b "h2" in
  let leaf1 = Netgraph.Topology.add_node b "leaf1" in
  let leaf2 = Netgraph.Topology.add_node b "leaf2" in
  let spines =
    List.init 4 (fun i ->
        Netgraph.Topology.add_node b (Printf.sprintf "spine%d" (i + 1)))
  in
  let link u v mbps =
    ignore
      (Netgraph.Topology.add_link b ~u ~v
         ~capacity_bps:(Netgraph.Topology.mbps mbps)
         ~delay:(Engine.Time.us 50))
  in
  link h1 leaf1 100;
  link h2 leaf2 100;
  List.iter
    (fun sp ->
      link leaf1 sp 25;
      link leaf2 sp 25)
    spines;
  (Netgraph.Topology.build b, h1, h2)

let spine_paths topo =
  List.init 4 (fun i ->
      Netgraph.Path.of_names topo
        [ "h1"; "leaf1"; Printf.sprintf "spine%d" (i + 1); "leaf2"; "h2" ])

let run_case ~label ~subflows =
  let topo, h1, h2 = build () in
  let sched = Engine.Sched.create () in
  let rng = Engine.Rng.create 11 in
  let net = Netsim.Net.create ~sched ~rng topo in
  let paths =
    Mptcp.Path_manager.tag_paths
      (List.filteri (fun i _ -> i < subflows) (spine_paths topo))
  in
  let src = Tcp.Endpoint.create net ~node:h1 in
  let dst = Tcp.Endpoint.create net ~node:h2 in
  let capture = Measure.Capture.attach net ~node:h2 ~conn:1 () in
  let conn =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
      ~cc:Mptcp.Algorithm.Lia ()
  in
  (* Background elephant colliding on spine1 for the whole run. *)
  let leaf1 = Netgraph.Topology.node_id topo "leaf1" in
  let leaf2 = Netgraph.Topology.node_id topo "leaf2" in
  Netsim.Net.install_path net ~tag:99
    (Netgraph.Path.of_names topo [ "leaf1"; "spine1"; "leaf2" ]);
  let _bg =
    Netsim.Traffic.cbr ~net ~src:leaf1 ~dst:leaf2 ~tag:99
      ~rate_bps:(Netgraph.Topology.mbps 20) ()
  in
  let horizon = Engine.Time.s 10 in
  Engine.Sched.run ~until:horizon sched;
  let _, total =
    Measure.Sampler.per_tag capture ~window:(Engine.Time.ms 500) ~until:horizon
  in
  Format.printf "%-28s %.1f Mbps (delivered %.1f MB)@." label
    (Measure.Series.mean_from total ~from_s:2.0)
    (float_of_int (Mptcp.Connection.delivered_bytes conn) /. 1e6);
  Measure.Series.mean_from total ~from_s:2.0

let () =
  Format.printf "leaf-spine fabric: 4 spines x 25 Mbps, spine1 carries a@.";
  Format.printf "20 Mbps background elephant.@.@.";
  let single = run_case ~label:"single-path TCP (spine1)" ~subflows:1 in
  let multi = run_case ~label:"MPTCP-LIA, 4 subflows" ~subflows:4 in
  Format.printf "@.MPTCP aggregates %.1fx the single-path throughput.@."
    (multi /. single)
