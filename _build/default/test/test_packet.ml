(* Tests for the wire-format model: sizes, constructors, validation and
   pretty-printing. *)

let data_tcp ?(payload = Packet.default_mss) ?(dss = None) () =
  {
    Packet.conn = 1;
    subflow = 0;
    kind = Packet.Data;
    seq = 1000;
    payload;
    ack = 0;
    sack = [];
    ece = false;
    dss;
    data_ack = 0;
  }

let sizes () =
  Alcotest.(check int) "header" 52 Packet.header_bytes;
  Alcotest.(check int) "mss" 1448 Packet.default_mss;
  let p =
    Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0 (data_tcp ())
  in
  Alcotest.(check int) "full segment is 1500B on the wire" 1500 p.Packet.size;
  Alcotest.(check int) "wire bits" 12000 (Packet.wire_bits p);
  let ack =
    Packet.make_tcp ~id:2 ~src:1 ~dst:0 ~tag:1 ~born:0
      { (data_tcp ~payload:0 ()) with Packet.kind = Packet.Ack; ack = 2448 }
  in
  Alcotest.(check int) "pure ACK is header-only" 52 ack.Packet.size

let is_data () =
  let d = Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0 (data_tcp ()) in
  Alcotest.(check bool) "data" true (Packet.is_data d);
  let a =
    Packet.make_tcp ~id:2 ~src:1 ~dst:0 ~tag:1 ~born:0
      { (data_tcp ~payload:0 ()) with Packet.kind = Packet.Ack }
  in
  Alcotest.(check bool) "ack is not data" false (Packet.is_data a);
  let plain = Packet.make_plain ~id:3 ~src:0 ~dst:1 ~tag:9 ~born:0 ~size:1500 in
  Alcotest.(check bool) "plain is not data" false (Packet.is_data plain)

let dss_consistency () =
  Alcotest.(check bool) "mismatched DSS rejected" true
    (try
       ignore
         (Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0
            (data_tcp ~payload:100
               ~dss:(Some { Packet.dseq = 0; dlen = 99 })
               ()));
       false
     with Invalid_argument _ -> true);
  let ok =
    Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0
      (data_tcp ~payload:100 ~dss:(Some { Packet.dseq = 500; dlen = 100 }) ())
  in
  match (Packet.tcp_exn ok).Packet.dss with
  | Some { Packet.dseq = 500; dlen = 100 } -> ()
  | _ -> Alcotest.fail "DSS not preserved"

let negative_payload () =
  Alcotest.(check bool) "negative payload rejected" true
    (try
       ignore
         (Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0
            (data_tcp ~payload:(-1) ()));
       false
     with Invalid_argument _ -> true)

let plain_validation () =
  Alcotest.(check bool) "zero-size plain rejected" true
    (try
       ignore (Packet.make_plain ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0 ~size:0);
       false
     with Invalid_argument _ -> true)

let tcp_exn_on_plain () =
  let p = Packet.make_plain ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0 ~size:100 in
  Alcotest.check_raises "tcp_exn on plain"
    (Invalid_argument "Packet.tcp_exn: not a TCP packet") (fun () ->
      ignore (Packet.tcp_exn p))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let pretty_printing () =
  let d =
    Packet.make_tcp ~id:7 ~src:0 ~dst:5 ~tag:2 ~born:0
      (data_tcp ~dss:(Some { Packet.dseq = 42; dlen = Packet.default_mss }) ())
  in
  let s = Format.asprintf "%a" Packet.pp d in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "pp mentions %S" fragment)
        true (contains ~needle:fragment s))
    [ "DATA"; "tag=2"; "dss=42" ]

let () =
  Alcotest.run "packet"
    [
      ( "packet",
        [
          Alcotest.test_case "wire sizes" `Quick sizes;
          Alcotest.test_case "is_data" `Quick is_data;
          Alcotest.test_case "DSS consistency enforced" `Quick dss_consistency;
          Alcotest.test_case "negative payload rejected" `Quick
            negative_payload;
          Alcotest.test_case "plain size validation" `Quick plain_validation;
          Alcotest.test_case "tcp_exn on plain raises" `Quick tcp_exn_on_plain;
          Alcotest.test_case "pretty printing" `Quick pretty_printing;
        ] );
    ]
