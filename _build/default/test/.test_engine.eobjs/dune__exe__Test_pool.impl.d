test/test_pool.ml: Alcotest Engine List Pool Rng Sched Time
