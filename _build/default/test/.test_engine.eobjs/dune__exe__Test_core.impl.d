test/test_core.ml: Alcotest Array Core Engine Format List Measure Mptcp Netgraph Printf String
