test/test_core.ml: Alcotest Array Core Engine List Measure Mptcp Netgraph Printf String
