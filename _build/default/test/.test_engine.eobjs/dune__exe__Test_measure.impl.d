test/test_measure.ml: Alcotest Array Engine Float Gen List Measure Netgraph Netsim Packet QCheck QCheck_alcotest String
