test/test_netsim.ml: Alcotest Engine List Netgraph Netsim Packet Printf QCheck QCheck_alcotest Tcp
