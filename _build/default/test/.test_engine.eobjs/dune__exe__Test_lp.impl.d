test/test_lp.ml: Alcotest Array Float List Lp QCheck QCheck_alcotest
