test/test_tcp.ml: Alcotest Array Engine Float Gen List Measure Netgraph Netsim Packet Printf QCheck QCheck_alcotest Tcp
