test/test_mptcp.ml: Alcotest Array Core Engine Float Gen List Measure Mptcp Netgraph Netsim Packet Printf QCheck QCheck_alcotest Tcp
