test/test_netgraph.ml: Alcotest Array Constraints Core Disjoint Engine Generate Kshortest List Lp Maxflow Netgraph Path QCheck QCheck_alcotest Shortest Topology
