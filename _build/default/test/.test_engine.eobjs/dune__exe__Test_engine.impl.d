test/test_engine.ml: Alcotest Array Engine Float Heap List Option QCheck QCheck_alcotest Rng Sched Time
