test/test_packet.ml: Alcotest Format List Packet Printf String
