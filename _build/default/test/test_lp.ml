(* Tests for the simplex solver, cross-checked against the brute-force
   vertex enumerator and against textbook instances — including the
   paper's own Fig. 1c LP. *)

let feps = 1e-6

let check_optimal ?(eps = feps) ~expected_obj result =
  match result with
  | Lp.Simplex.Optimal { objective; x; _ } ->
    Alcotest.(check (float eps)) "objective" expected_obj objective;
    x
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"
  | Lp.Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"

let paper_lp () =
  let a = [| [| 1.; 1.; 0. |]; [| 1.; 0.; 1. |]; [| 0.; 1.; 1. |] |] in
  let b = [| 40.; 60.; 80. |] in
  let c = [| 1.; 1.; 1. |] in
  let x = check_optimal ~expected_obj:90.0 (Lp.Simplex.solve ~c ~a ~b) in
  Alcotest.(check (float feps)) "x1" 10.0 x.(0);
  Alcotest.(check (float feps)) "x2" 30.0 x.(1);
  Alcotest.(check (float feps)) "x3" 50.0 x.(2)

let paper_lp_duals () =
  (* All three bottlenecks bind with shadow price 1/2: relaxing any one
     by 1 Mbps buys 0.5 Mbps of total throughput. *)
  let a = [| [| 1.; 1.; 0. |]; [| 1.; 0.; 1. |]; [| 0.; 1.; 1. |] |] in
  let b = [| 40.; 60.; 80. |] in
  let c = [| 1.; 1.; 1. |] in
  match Lp.Simplex.solve ~c ~a ~b with
  | Lp.Simplex.Optimal { dual; _ } ->
    Array.iter (fun y -> Alcotest.(check (float feps)) "dual" 0.5 y) dual
  | _ -> Alcotest.fail "expected optimal"

let textbook_2d () =
  (* max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2, 6). *)
  let a = [| [| 1.; 0. |]; [| 0.; 2. |]; [| 3.; 2. |] |] in
  let b = [| 4.; 12.; 18. |] in
  let c = [| 3.; 5. |] in
  let x = check_optimal ~expected_obj:36.0 (Lp.Simplex.solve ~c ~a ~b) in
  Alcotest.(check (float feps)) "x" 2.0 x.(0);
  Alcotest.(check (float feps)) "y" 6.0 x.(1)

let degenerate_ok () =
  (* Redundant constraint repeated: classic degeneracy; Bland must still
     terminate at the optimum. *)
  let a = [| [| 1.; 1. |]; [| 1.; 1. |]; [| 1.; 0. |] |] in
  let b = [| 10.; 10.; 4. |] in
  let c = [| 2.; 1. |] in
  let x = check_optimal ~expected_obj:14.0 (Lp.Simplex.solve ~c ~a ~b) in
  Alcotest.(check (float feps)) "x" 4.0 x.(0)

let unbounded_detected () =
  let a = [| [| 1.; -1. |] |] and b = [| 1. |] and c = [| 0.; 1. |] in
  match Lp.Simplex.solve ~c ~a ~b with
  | Lp.Simplex.Unbounded -> ()
  | r -> Alcotest.failf "expected unbounded, got %a" Lp.Simplex.pp_result r

let infeasible_detected () =
  (* x1 <= -1 with x1 >= 0 is empty. *)
  let a = [| [| 1. |] |] and b = [| -1. |] and c = [| 1. |] in
  match Lp.Simplex.solve ~c ~a ~b with
  | Lp.Simplex.Infeasible -> ()
  | r -> Alcotest.failf "expected infeasible, got %a" Lp.Simplex.pp_result r

let negative_rhs_feasible () =
  (* -x <= -2 means x >= 2; max -x should give -2 (phase 1 exercised). *)
  let a = [| [| -1. |]; [| 1. |] |] in
  let b = [| -2.; 10. |] in
  let c = [| -1. |] in
  let x = check_optimal ~expected_obj:(-2.0) (Lp.Simplex.solve ~c ~a ~b) in
  Alcotest.(check (float feps)) "x" 2.0 x.(0)

let equality_via_opposing_rows () =
  (* x >= 2 and x <= 2 pin x exactly; phase 1 must find the point and
     phase 2 must report it for both objectives. *)
  let a = [| [| -1. |]; [| 1. |] |] in
  let b = [| -2.; 2. |] in
  let x = check_optimal ~expected_obj:2.0 (Lp.Simplex.solve ~c:[| 1. |] ~a ~b) in
  Alcotest.(check (float feps)) "x pinned" 2.0 x.(0);
  let x' = check_optimal ~expected_obj:(-2.0) (Lp.Simplex.solve ~c:[| -1. |] ~a ~b) in
  Alcotest.(check (float feps)) "x pinned (min)" 2.0 x'.(0)

let infeasible_bounds () =
  (* x >= 5 and x <= 3: phase 1 cannot drive the artificials out. *)
  let a = [| [| -1. |]; [| 1. |] |] in
  let b = [| -5.; 3. |] in
  match Lp.Simplex.solve ~c:[| 1. |] ~a ~b with
  | Lp.Simplex.Infeasible -> ()
  | r -> Alcotest.failf "expected infeasible, got %a" Lp.Simplex.pp_result r

let redundant_ge_rows () =
  (* The same >= constraint twice: one artificial ends phase 1 basic at
     level zero and must be neutralised, not corrupt phase 2. *)
  let a = [| [| -1.; 0. |]; [| -1.; 0. |]; [| 1.; 1. |] |] in
  let b = [| -1.; -1.; 4. |] in
  let x = check_optimal ~expected_obj:4.0
      (Lp.Simplex.solve ~c:[| 1.; 1. |] ~a ~b) in
  Alcotest.(check bool) "x1 >= 1 respected" true (x.(0) >= 1.0 -. feps)

let no_constraints () =
  (match Lp.Simplex.solve ~c:[| 1. |] ~a:[||] ~b:[||] with
  | Lp.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "positive cost with no constraints is unbounded");
  match Lp.Simplex.solve ~c:[| -1. |] ~a:[||] ~b:[||] with
  | Lp.Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float feps)) "objective" 0.0 objective
  | _ -> Alcotest.fail "negative cost with no constraints is optimal at 0"

let dimension_mismatch () =
  Alcotest.check_raises "b wrong length"
    (Invalid_argument "Simplex.solve: |b| must equal the number of rows of a")
    (fun () -> ignore (Lp.Simplex.solve ~c:[| 1. |] ~a:[| [| 1. |] |] ~b:[||]))

let non_finite_rejected () =
  Alcotest.check_raises "nan coefficient"
    (Invalid_argument "Simplex.solve: non-finite coefficient") (fun () ->
      ignore (Lp.Simplex.solve ~c:[| Float.nan |] ~a:[| [| 1. |] |] ~b:[| 1. |]))

let feasible_checker () =
  let a = [| [| 1.; 1. |] |] and b = [| 5. |] in
  Alcotest.(check bool) "inside" true
    (Lp.Simplex.feasible ~a ~b ~x:[| 2.; 2. |] ~eps:1e-9);
  Alcotest.(check bool) "outside" false
    (Lp.Simplex.feasible ~a ~b ~x:[| 4.; 2. |] ~eps:1e-9);
  Alcotest.(check bool) "negative var" false
    (Lp.Simplex.feasible ~a ~b ~x:[| -1.; 0. |] ~eps:1e-9)

(* Enumerator agreement on random small LPs with b >= 0 (so 0 is feasible
   and both solvers must agree on the optimum or on unboundedness). *)
let gen_lp =
  QCheck.Gen.(
    let dim = 2 -- 3 in
    let rows = 1 -- 4 in
    dim >>= fun n ->
    rows >>= fun m ->
    let coeff = float_range (-3.0) 5.0 in
    let rhs = float_range 0.0 10.0 in
    let row = array_repeat n coeff in
    triple (array_repeat n (float_range (-2.0) 4.0)) (array_repeat m row)
      (array_repeat m rhs))

let arbitrary_lp = QCheck.make gen_lp

let qcheck_vs_enumerate =
  QCheck.Test.make ~name:"simplex agrees with vertex enumeration" ~count:300
    arbitrary_lp (fun (c, a, b) ->
      match Lp.Simplex.solve ~c ~a ~b with
      | Lp.Simplex.Infeasible -> false (* b >= 0 means 0 is feasible *)
      | Lp.Simplex.Unbounded -> true (* enumeration cannot confirm cheaply *)
      | Lp.Simplex.Optimal { objective; x; _ } ->
        Lp.Simplex.feasible ~a ~b ~x ~eps:1e-6
        &&
        (match Lp.Enumerate.best_vertex ~c ~a ~b with
        | None -> false
        | Some (best, _) -> Float.abs (best -. objective) < 1e-5))

let qcheck_duals_bound =
  (* Weak duality: for a maximization with optimal primal, y.b equals the
     objective (strong duality) within tolerance. *)
  QCheck.Test.make ~name:"strong duality holds at the optimum" ~count:300
    arbitrary_lp (fun (c, a, b) ->
      match Lp.Simplex.solve ~c ~a ~b with
      | Lp.Simplex.Optimal { objective; dual; _ } ->
        let yb = ref 0.0 in
        Array.iteri (fun i y -> yb := !yb +. (y *. b.(i))) dual;
        Float.abs (!yb -. objective) < 1e-5
      | Lp.Simplex.Unbounded | Lp.Simplex.Infeasible -> true)

let enumerate_paper () =
  let a = [| [| 1.; 1.; 0. |]; [| 1.; 0.; 1. |]; [| 0.; 1.; 1. |] |] in
  let b = [| 40.; 60.; 80. |] in
  let c = [| 1.; 1.; 1. |] in
  match Lp.Enumerate.best_vertex ~c ~a ~b with
  | Some (obj, x) ->
    Alcotest.(check (float feps)) "objective" 90.0 obj;
    Alcotest.(check (float feps)) "x1" 10.0 x.(0)
  | None -> Alcotest.fail "expected a vertex"

let feasible_vertices_paper () =
  (* Fig. 1c's polytope: unit cube-like region with 3 pair constraints.
     Its corners include the origin, the single-path maxima and the
     optimum (10, 30, 50). *)
  let a = [| [| 1.; 1.; 0. |]; [| 1.; 0.; 1. |]; [| 0.; 1.; 1. |] |] in
  let b = [| 40.; 60.; 80. |] in
  let vs = Lp.Enumerate.feasible_vertices ~a ~b in
  let has v = List.exists (fun u -> u = v) vs in
  Alcotest.(check bool) "origin" true (has [| 0.; 0.; 0. |]);
  Alcotest.(check bool) "x1 axis max" true (has [| 40.; 0.; 0. |]);
  Alcotest.(check bool) "x3 axis max" true (has [| 0.; 0.; 60. |]);
  Alcotest.(check bool) "the optimum is a vertex" true
    (has [| 10.; 30.; 50. |]);
  (* Every vertex is feasible, and none exceeds the optimum total. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "feasible" true
        (Lp.Simplex.feasible ~a ~b ~x:v ~eps:1e-6);
      Alcotest.(check bool) "below the optimum" true
        (v.(0) +. v.(1) +. v.(2) <= 90.0 +. 1e-6))
    vs

let feasible_vertices_square () =
  (* x, y <= 1: the unit square has exactly 4 vertices. *)
  let a = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let b = [| 1.; 1. |] in
  let vs = Lp.Enumerate.feasible_vertices ~a ~b in
  Alcotest.(check int) "four corners" 4 (List.length vs)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "paper Fig. 1c LP" `Quick paper_lp;
          Alcotest.test_case "paper LP shadow prices" `Quick paper_lp_duals;
          Alcotest.test_case "textbook 2d" `Quick textbook_2d;
          Alcotest.test_case "degenerate instance terminates" `Quick
            degenerate_ok;
          Alcotest.test_case "unbounded detected" `Quick unbounded_detected;
          Alcotest.test_case "infeasible detected" `Quick infeasible_detected;
          Alcotest.test_case "negative rhs via phase 1" `Quick
            negative_rhs_feasible;
          Alcotest.test_case "equality via opposing rows" `Quick
            equality_via_opposing_rows;
          Alcotest.test_case "infeasible bounds" `Quick infeasible_bounds;
          Alcotest.test_case "redundant >= rows neutralised" `Quick
            redundant_ge_rows;
          Alcotest.test_case "no constraints" `Quick no_constraints;
          Alcotest.test_case "dimension mismatch rejected" `Quick
            dimension_mismatch;
          Alcotest.test_case "non-finite rejected" `Quick non_finite_rejected;
          Alcotest.test_case "feasibility checker" `Quick feasible_checker;
        ] );
      ( "cross-check",
        [
          Alcotest.test_case "enumerator on the paper LP" `Quick
            enumerate_paper;
          QCheck_alcotest.to_alcotest qcheck_vs_enumerate;
          QCheck_alcotest.to_alcotest qcheck_duals_bound;
          Alcotest.test_case "Fig. 1c polytope vertices" `Quick
            feasible_vertices_paper;
          Alcotest.test_case "unit square vertices" `Quick
            feasible_vertices_square;
        ] );
    ]
