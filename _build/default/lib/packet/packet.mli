(** Simulated wire format.

    Models exactly the header fields the reproduction needs: enough TCP to
    run a real congestion-control loop, the MPTCP data-sequence mapping
    (DSS), and the path {e tag} — the short routing identifier from the
    paper (Motiwala et al.'s path splicing / ECMP-style selector) that
    pins each subflow to its pre-installed route. *)

type addr = int
(** Node id in the topology. *)

type tag = int
(** Path selector carried by every packet of a subflow.  Forwarding is
    deterministic per (destination, tag). *)

(** MPTCP Data Sequence Signal: maps this segment's payload into the
    connection-level byte stream. *)
type dss = { dseq : int; dlen : int }

type tcp_kind =
  | Syn
  | Syn_ack
  | Data
  | Ack
  | Fin

type tcp = {
  conn : int;       (** connection id, unique per simulation *)
  subflow : int;    (** subflow index within the connection *)
  kind : tcp_kind;
  seq : int;        (** subflow-level sequence of the first payload byte *)
  payload : int;    (** payload length in bytes (0 for pure ACKs) *)
  ack : int;        (** cumulative subflow-level acknowledgement *)
  sack : (int * int) list;
      (** SACK blocks [(start, end_)] above [ack], at most
          {!max_sack_blocks}, most recently changed first (RFC 2018) *)
  ece : bool;       (** ECN Echo: the receiver saw Congestion Experienced *)
  dss : dss option; (** present on MPTCP data segments *)
  data_ack : int;   (** cumulative connection-level acknowledgement *)
}

val max_sack_blocks : int
(** 3, as fits a TCP option block alongside timestamps. *)

type body =
  | Tcp of tcp
  | Plain  (** cross-traffic payload (CBR / on-off generators) *)

(** Explicit Congestion Notification (RFC 3168), reduced to what the
    transport needs: data packets advertise ECN capability and may be
    marked by a queue; ACKs echo the mark until the sender reacts. *)
type ecn =
  | Not_ect   (** not ECN-capable (cross traffic, handshakes) *)
  | Ect       (** ECN-capable transport, unmarked *)
  | Ce        (** congestion experienced: marked by a router *)

type t = {
  id : int;         (** unique wire id, for tracing *)
  src : addr;
  dst : addr;
  tag : tag;
  size : int;       (** total wire size in bytes, headers included *)
  body : body;
  mutable ecn : ecn;     (** mutable: queues mark packets in flight *)
  born : Engine.Time.t;  (** when the packet entered the network *)
}

val header_bytes : int
(** Per-segment overhead modelled on IPv4 (20) + TCP (20) + MPTCP DSS
    option (12): 52 bytes. *)

val default_mss : int
(** 1448 payload bytes, so a full data segment is 1500 B on the wire. *)

val wire_bits : t -> int

val is_data : t -> bool
(** [true] for TCP segments carrying payload. *)

val tcp_exn : t -> tcp
(** Raises [Invalid_argument] on non-TCP packets. *)

val make_tcp :
  id:int -> src:addr -> dst:addr -> tag:tag -> born:Engine.Time.t
  -> ?ecn:ecn -> tcp -> t
(** Builds a TCP packet, deriving [size] from kind and payload.
    [ecn] defaults to [Not_ect]. *)

val make_plain :
  id:int -> src:addr -> dst:addr -> tag:tag -> born:Engine.Time.t
  -> size:int -> t
(** Cross-traffic packet of explicit wire [size] (>= 1 byte). *)

val pp : Format.formatter -> t -> unit
