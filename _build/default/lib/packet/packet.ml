type addr = int
type tag = int
type dss = { dseq : int; dlen : int }
type tcp_kind = Syn | Syn_ack | Data | Ack | Fin

type tcp = {
  conn : int;
  subflow : int;
  kind : tcp_kind;
  seq : int;
  payload : int;
  ack : int;
  sack : (int * int) list;
  ece : bool;
  dss : dss option;
  data_ack : int;
}

type body = Tcp of tcp | Plain

type ecn = Not_ect | Ect | Ce

type t = {
  id : int;
  src : addr;
  dst : addr;
  tag : tag;
  size : int;
  body : body;
  mutable ecn : ecn;
  born : Engine.Time.t;
}

let max_sack_blocks = 3
let header_bytes = 52
let default_mss = 1448
let wire_bits p = p.size * 8

let is_data p =
  match p.body with
  | Tcp { kind = Data; payload; _ } -> payload > 0
  | Tcp _ | Plain -> false

let tcp_exn p =
  match p.body with
  | Tcp tcp -> tcp
  | Plain -> invalid_arg "Packet.tcp_exn: not a TCP packet"

let make_tcp ~id ~src ~dst ~tag ~born ?(ecn = Not_ect) tcp =
  if tcp.payload < 0 then invalid_arg "Packet.make_tcp: negative payload";
  if List.length tcp.sack > max_sack_blocks then
    invalid_arg "Packet.make_tcp: too many SACK blocks";
  (match tcp.dss with
  | Some { dlen; _ } when dlen <> tcp.payload ->
    invalid_arg "Packet.make_tcp: DSS length must match payload"
  | Some _ | None -> ());
  { id; src; dst; tag; size = header_bytes + tcp.payload; body = Tcp tcp;
    ecn; born }

let make_plain ~id ~src ~dst ~tag ~born ~size =
  if size < 1 then invalid_arg "Packet.make_plain: size must be >= 1";
  { id; src; dst; tag; size; body = Plain; ecn = Not_ect; born }

let pp_kind fmt = function
  | Syn -> Format.pp_print_string fmt "SYN"
  | Syn_ack -> Format.pp_print_string fmt "SYN-ACK"
  | Data -> Format.pp_print_string fmt "DATA"
  | Ack -> Format.pp_print_string fmt "ACK"
  | Fin -> Format.pp_print_string fmt "FIN"

let pp fmt p =
  match p.body with
  | Plain ->
    Format.fprintf fmt "#%d %d->%d tag=%d plain %dB" p.id p.src p.dst p.tag
      p.size
  | Tcp tcp ->
    Format.fprintf fmt "#%d %d->%d tag=%d %a c%d.s%d seq=%d len=%d ack=%d%a"
      p.id p.src p.dst p.tag pp_kind tcp.kind tcp.conn tcp.subflow tcp.seq
      tcp.payload tcp.ack
      (fun fmt -> function
        | None -> ()
        | Some { dseq; dlen } -> Format.fprintf fmt " dss=%d+%d" dseq dlen)
      tcp.dss
