(** CUBIC congestion control (RFC 8312).

    Linux's default, and the algorithm the paper found to always reach
    the 90 Mbps optimum: each subflow runs an independent CUBIC, and the
    asynchrony of their sawtooths performs the gradient search.

    Parameters: C = 0.4, beta = 0.7, fast convergence on, and the
    TCP-friendly (Reno-equivalent) floor of RFC 8312 section 4.2. *)

val factory : Cc.factory

val factory_with :
  ?c:float -> ?beta:float -> ?fast_convergence:bool -> unit -> Cc.factory
(** Parameterised variant for the ablation benchmarks. *)
