type sibling = {
  cwnd : float;
  srtt_s : float;
  in_slow_start : bool;
  loss_interval_bytes : int;
  established : bool;
}

type ctx = {
  now_s : unit -> float;
  mss : int;
  get_cwnd : unit -> float;
  set_cwnd : float -> unit;
  get_ssthresh : unit -> float;
  set_ssthresh : float -> unit;
  srtt_s : unit -> float;
  siblings : unit -> sibling array;
  self_index : unit -> int;
}

type instance = {
  name : string;
  on_ack : acked:int -> unit;
  on_loss : unit -> unit;
  on_rto : unit -> unit;
}

type factory = ctx -> instance

let min_cwnd = 2.0

let in_slow_start ctx = ctx.get_cwnd () < ctx.get_ssthresh ()

let slow_start_ack ctx ~acked =
  let cwnd = ctx.get_cwnd () in
  let ssthresh = ctx.get_ssthresh () in
  if cwnd < ssthresh then begin
    let grown = cwnd +. (float_of_int acked /. float_of_int ctx.mss) in
    ctx.set_cwnd (Float.min grown ssthresh);
    true
  end
  else false
