(** TCP NewReno congestion avoidance (RFC 5681).

    The uncoupled single-path baseline: +1 MSS per RTT in congestion
    avoidance, halve on loss.  Also the substrate whose "asynchronous
    sawtooth" behaviour the paper credits for CUBIC's ability to find the
    optimum. *)

val factory : Cc.factory
