(** Single-path TCP flow: a sender and receiver pair wired over the
    simulated network.

    The iperf of this repository's plain-TCP experiments, and the unit
    under test for validating the transport substrate (a lone flow should
    fill its bottleneck link; competing flows should share it). *)

type t

val start :
  src:Endpoint.t ->
  dst:Endpoint.t ->
  tag:Packet.tag ->
  conn:int ->
  ?config:Sender.config ->
  ?cc:Cc.factory ->
  ?delayed_ack:bool ->
  ?total_bytes:int ->
  ?start_at:Engine.Time.t ->
  unit -> t
(** The route [tag] must already be installed in the network (see
    {!Netsim.Net.install_path}).  [cc] defaults to {!Cc_cubic.factory};
    omitting [total_bytes] gives an unbounded bulk transfer. *)

val sender : t -> Sender.t
val bytes_delivered : t -> int
(** In-order bytes handed to the receiving application. *)

val completed_at : t -> Engine.Time.t option
(** Time the last byte of a bounded transfer was delivered. *)

val goodput_bps : t -> now:Engine.Time.t -> float
