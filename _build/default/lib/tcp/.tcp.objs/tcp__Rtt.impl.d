lib/tcp/rtt.ml: Engine
