lib/tcp/cc_reno.ml: Cc Float
