lib/tcp/cc_cubic.ml: Cc Float
