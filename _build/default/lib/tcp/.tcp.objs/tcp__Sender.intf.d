lib/tcp/sender.mli: Cc Engine Packet
