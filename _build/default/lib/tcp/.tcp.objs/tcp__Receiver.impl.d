lib/tcp/receiver.ml: Engine Int List Map Packet
