lib/tcp/rtt.mli: Engine
