lib/tcp/cc_reno.mli: Cc
