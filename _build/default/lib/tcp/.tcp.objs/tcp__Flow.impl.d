lib/tcp/flow.ml: Cc_cubic Endpoint Engine Netsim Packet Receiver Sender
