lib/tcp/flow.mli: Cc Endpoint Engine Packet Sender
