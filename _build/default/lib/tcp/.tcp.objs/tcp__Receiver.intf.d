lib/tcp/receiver.mli: Engine Packet
