lib/tcp/endpoint.mli: Netsim Packet
