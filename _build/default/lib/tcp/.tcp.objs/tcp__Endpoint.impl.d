lib/tcp/endpoint.ml: Hashtbl Netsim Packet
