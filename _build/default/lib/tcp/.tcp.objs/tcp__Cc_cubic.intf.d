lib/tcp/cc_cubic.mli: Cc
