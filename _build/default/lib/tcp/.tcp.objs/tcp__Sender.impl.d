lib/tcp/sender.ml: Cc Engine Float Int List Map Packet Rtt
