lib/tcp/cc.mli:
