let factory (ctx : Cc.ctx) =
  let on_ack ~acked =
    if not (Cc.slow_start_ack ctx ~acked) then begin
      let cwnd = ctx.Cc.get_cwnd () in
      let acked_mss = float_of_int acked /. float_of_int ctx.Cc.mss in
      ctx.Cc.set_cwnd (cwnd +. (acked_mss /. cwnd))
    end
  in
  let on_loss () =
    let half = Float.max Cc.min_cwnd (ctx.Cc.get_cwnd () /. 2.0) in
    ctx.Cc.set_ssthresh half;
    ctx.Cc.set_cwnd half
  in
  let on_rto () =
    let half = Float.max Cc.min_cwnd (ctx.Cc.get_cwnd () /. 2.0) in
    ctx.Cc.set_ssthresh half;
    ctx.Cc.set_cwnd 1.0
  in
  { Cc.name = "reno"; on_ack; on_loss; on_rto }
