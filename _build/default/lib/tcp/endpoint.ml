type t = {
  net : Netsim.Net.t;
  node : int;
  handlers : (int * int, Packet.t -> unit) Hashtbl.t;
  mutable plain : (Packet.t -> unit) option;
  mutable unmatched : int;
}

let create net ~node =
  let t = { net; node; handlers = Hashtbl.create 8; plain = None;
            unmatched = 0 } in
  Netsim.Net.attach_host net ~node (fun p ->
      match p.Packet.body with
      | Packet.Plain -> (
        match t.plain with Some f -> f p | None -> ())
      | Packet.Tcp tcp -> (
        match Hashtbl.find_opt t.handlers (tcp.Packet.conn, tcp.Packet.subflow)
        with
        | Some f -> f p
        | None -> t.unmatched <- t.unmatched + 1));
  t

let node t = t.node
let net t = t.net

let register t ~conn ~subflow f =
  if Hashtbl.mem t.handlers (conn, subflow) then
    invalid_arg "Endpoint.register: already registered";
  Hashtbl.replace t.handlers (conn, subflow) f

let unregister t ~conn ~subflow = Hashtbl.remove t.handlers (conn, subflow)
let on_plain t f = t.plain <- Some f
let unmatched t = t.unmatched
