type t = {
  min_rto : Engine.Time.t;
  max_rto : Engine.Time.t;
  initial_rto : Engine.Time.t;
  mutable srtt : Engine.Time.t option;
  mutable rttvar : Engine.Time.t;
  mutable backoff_factor : int;
  mutable samples : int;
}

let create ?(initial_rto = Engine.Time.s 1) ?(min_rto = Engine.Time.ms 200)
    ?(max_rto = Engine.Time.s 60) () =
  { min_rto; max_rto; initial_rto; srtt = None; rttvar = Engine.Time.zero;
    backoff_factor = 1; samples = 0 }

let sample t r =
  if Engine.Time.( < ) r Engine.Time.zero then
    invalid_arg "Rtt.sample: negative RTT";
  (match t.srtt with
  | None ->
    t.srtt <- Some r;
    t.rttvar <- r / 2
  | Some srtt ->
    let err = abs (Engine.Time.diff srtt r) in
    (* rttvar := 3/4 rttvar + 1/4 |err|;  srtt := 7/8 srtt + 1/8 r *)
    t.rttvar <- ((3 * t.rttvar) + err) / 4;
    t.srtt <- Some (((7 * srtt) + r) / 8));
  t.backoff_factor <- 1;
  t.samples <- t.samples + 1

let srtt t = t.srtt
let rttvar t = t.rttvar

let base_rto t =
  match t.srtt with
  | None -> t.initial_rto
  | Some srtt ->
    let raw = Engine.Time.add srtt (4 * t.rttvar) in
    Engine.Time.max t.min_rto raw

let rto t = Engine.Time.min t.max_rto (base_rto t * t.backoff_factor)

let backoff t =
  if Engine.Time.( < ) (rto t) t.max_rto then
    t.backoff_factor <- t.backoff_factor * 2

let samples t = t.samples
