(** Per-node packet demultiplexer.

    One endpoint owns a node's host attachment in {!Netsim.Net} and
    dispatches arriving TCP packets to registered (connection, subflow)
    handlers — the role of the kernel's socket lookup. *)

type t

val create : Netsim.Net.t -> node:int -> t
(** Attaches to the node; raises if the node already has a host. *)

val node : t -> int
val net : t -> Netsim.Net.t

val register :
  t -> conn:int -> subflow:int -> (Packet.t -> unit) -> unit
(** Raises [Invalid_argument] on duplicate registration. *)

val unregister : t -> conn:int -> subflow:int -> unit

val on_plain : t -> (Packet.t -> unit) -> unit
(** Handler for non-TCP (cross-traffic) packets; default drops them. *)

val unmatched : t -> int
(** TCP packets that found no registered handler. *)
