(** Pluggable congestion control.

    A congestion controller owns the window variables of one subflow; the
    sender machine calls it on every cumulative ACK, fast-retransmit loss
    and timeout.  Coupled (MPTCP) controllers additionally read the live
    state of their sibling subflows through {!ctx.siblings} — that
    coupling is exactly what distinguishes LIA/OLIA from running plain
    CUBIC per path, the comparison at the heart of the paper. *)

(** Read-only snapshot of one subflow, as seen by a coupled controller. *)
type sibling = {
  cwnd : float;       (** congestion window, MSS units *)
  srtt_s : float;     (** smoothed RTT in seconds (estimate before data) *)
  in_slow_start : bool;
  loss_interval_bytes : int;
      (** OLIA's l_p: bytes acknowledged in the current inter-loss
          interval, or in the previous one if that was larger *)
  established : bool; (** has sent at least one segment *)
}

type ctx = {
  now_s : unit -> float;        (** simulated seconds *)
  mss : int;
  get_cwnd : unit -> float;
  set_cwnd : float -> unit;     (** clamped to [\[min_cwnd, +inf)] by the sender *)
  get_ssthresh : unit -> float;
  set_ssthresh : float -> unit;
  srtt_s : unit -> float;       (** this subflow's smoothed RTT, seconds *)
  siblings : unit -> sibling array;
      (** all subflows of the owning connection, self included; a
          single-path flow sees an array of length 1 *)
  self_index : unit -> int;     (** this subflow's slot in [siblings ()] *)
}

type instance = {
  name : string;
  on_ack : acked:int -> unit;
      (** [acked] bytes newly acknowledged by a cumulative ACK *)
  on_loss : unit -> unit;
      (** entering fast recovery (3 dup-ACKs): apply the multiplicative
          decrease to cwnd and ssthresh *)
  on_rto : unit -> unit;
      (** retransmission timeout: collapse the window *)
}

type factory = ctx -> instance
(** Controllers are created per subflow, after the context is wired. *)

val min_cwnd : float
(** 2 MSS, the floor Linux applies after any decrease. *)

val slow_start_ack : ctx -> acked:int -> bool
(** Shared helper: when [cwnd < ssthresh], grow by one MSS per MSS acked
    (capped at ssthresh) and return [true]; otherwise return [false] and
    leave the window to the caller's congestion-avoidance law. *)

val in_slow_start : ctx -> bool
