(** Round-trip-time estimation and retransmission timeout (RFC 6298).

    [srtt]/[rttvar] use the standard gains (1/8, 1/4); the RTO is
    [srtt + 4 * rttvar], clamped to [\[min_rto, max_rto\]] and doubled on
    each backoff.  The defaults mirror Linux: 200 ms floor, 1 s initial
    RTO, 60 s ceiling — the same stack the paper measured. *)

type t

val create :
  ?initial_rto:Engine.Time.t ->
  ?min_rto:Engine.Time.t ->
  ?max_rto:Engine.Time.t ->
  unit -> t

val sample : t -> Engine.Time.t -> unit
(** Feed one RTT measurement (from a never-retransmitted segment — Karn's
    rule is the caller's responsibility).  Resets any backoff. *)

val srtt : t -> Engine.Time.t option
(** Smoothed RTT; [None] before the first sample. *)

val rttvar : t -> Engine.Time.t
val rto : t -> Engine.Time.t
(** Current timeout including backoff. *)

val backoff : t -> unit
(** Doubles the RTO (up to [max_rto]); called when the timer fires. *)

val samples : t -> int
