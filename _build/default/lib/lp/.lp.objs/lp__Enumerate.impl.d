lib/lp/enumerate.ml: Array Float List Simplex
