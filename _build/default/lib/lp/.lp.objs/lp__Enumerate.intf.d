lib/lp/enumerate.mli:
