let eps = 1e-7

(* Gaussian elimination with partial pivoting; [None] for singular. *)
let solve_linear m v =
  let n = Array.length v in
  let a = Array.map Array.copy m in
  let b = Array.copy v in
  let ok = ref true in
  for col = 0 to n - 1 do
    if !ok then begin
      let piv = ref col in
      for r = col + 1 to n - 1 do
        if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
      done;
      if Float.abs a.(!piv).(col) < 1e-12 then ok := false
      else begin
        if !piv <> col then begin
          let tmp = a.(col) in
          a.(col) <- a.(!piv);
          a.(!piv) <- tmp;
          let tb = b.(col) in
          b.(col) <- b.(!piv);
          b.(!piv) <- tb
        end;
        for r = 0 to n - 1 do
          if r <> col then begin
            let k = a.(r).(col) /. a.(col).(col) in
            if k <> 0.0 then begin
              for j = col to n - 1 do
                a.(r).(j) <- a.(r).(j) -. (k *. a.(col).(j))
              done;
              b.(r) <- b.(r) -. (k *. b.(col))
            end
          end
        done
      end
    end
  done;
  if not !ok then None
  else Some (Array.init n (fun i -> b.(i) /. a.(i).(i)))

(* Enumerate all size-[k] subsets of [0 .. total-1]. *)
let iter_subsets total k f =
  let choice = Array.make k 0 in
  let rec go idx start =
    if idx = k then f choice
    else
      for v = start to total - 1 do
        choice.(idx) <- v;
        go (idx + 1) (v + 1)
      done
  in
  if k <= total then go 0 0

(* Shared driver: visit the solution of every n-subset of active
   constraints (rows of A plus the axes). *)
let iter_basic_solutions ~a ~b ~n f =
  let m = Array.length a in
  let total = m + n in
  iter_subsets total n (fun choice ->
      let rows =
        Array.map
          (fun k ->
            if k < m then Array.copy a.(k)
            else begin
              let row = Array.make n 0.0 in
              row.(k - m) <- 1.0;
              row
            end)
          choice
      in
      let rhs = Array.map (fun k -> if k < m then b.(k) else 0.0) choice in
      match solve_linear rows rhs with None -> () | Some x -> f x)

let validate ~a ~b ~n name =
  let m = Array.length a in
  if Array.length b <> m then invalid_arg (name ^ ": |b| <> m");
  if n > 10 then invalid_arg (name ^ ": n too large");
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg (name ^ ": ragged matrix"))
    a

let best_vertex ~c ~a ~b =
  let n = Array.length c in
  validate ~a ~b ~n "Enumerate.best_vertex";
  let best = ref None in
  iter_basic_solutions ~a ~b ~n (fun x ->
      if Simplex.feasible ~a ~b ~x ~eps then begin
        let obj = ref 0.0 in
        Array.iteri (fun j v -> obj := !obj +. (v *. x.(j))) c;
        match !best with
        | Some (prev, _) when prev >= !obj -> ()
        | _ -> best := Some (!obj, Array.copy x)
      end);
  !best

let feasible_vertices ~a ~b =
  let n = match a with [||] -> 0 | _ -> Array.length a.(0) in
  validate ~a ~b ~n "Enumerate.feasible_vertices";
  let acc = ref [] in
  iter_basic_solutions ~a ~b ~n (fun x ->
      if Simplex.feasible ~a ~b ~x ~eps then begin
        (* Snap tiny numerical noise so deduplication is stable. *)
        let x = Array.map (fun v -> if Float.abs v < eps then 0.0 else v) x in
        let close y = Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-5) x y in
        if not (List.exists close !acc) then acc := Array.copy x :: !acc
      end);
  List.sort compare !acc
