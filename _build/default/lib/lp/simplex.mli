(** Dense two-phase primal simplex.

    Solves [maximize c.x  subject to  A x <= b, x >= 0] — the form taken
    by the paper's path-throughput problem (Fig. 1c), where each row of
    [A] is a link and [b] its capacity.  Bland's rule guarantees
    termination under degeneracy (common here: many constraints are tight
    at the optimum).

    Problems in this repository are tiny (a handful of paths and links),
    so a dense float tableau is the right tool; no scaling or revised
    simplex is needed. *)

type result =
  | Optimal of solution
  | Unbounded
  | Infeasible

and solution = {
  objective : float;
  x : float array;  (** primal values, one per structural variable *)
  dual : float array;
      (** shadow price per constraint row: the marginal objective gain per
          unit of extra capacity.  A strictly positive dual identifies a
          binding bottleneck link. *)
}

val solve :
  c:float array -> a:float array array -> b:float array -> result
(** [solve ~c ~a ~b] with [a] an [m x n] matrix ([m] rows of length [n]),
    [b] of length [m], [c] of length [n].  Raises [Invalid_argument] on
    dimension mismatch or non-finite input. *)

val pp_result : Format.formatter -> result -> unit

val feasible : a:float array array -> b:float array -> x:float array
  -> eps:float -> bool
(** [feasible ~a ~b ~x ~eps] checks [A x <= b + eps] and [x >= -eps]. *)
