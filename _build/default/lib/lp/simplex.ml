type result =
  | Optimal of solution
  | Unbounded
  | Infeasible

and solution = {
  objective : float;
  x : float array;
  dual : float array;
}

let eps = 1e-9
let max_iterations = 100_000

let validate ~c ~a ~b =
  let m = Array.length a and n = Array.length c in
  if Array.length b <> m then
    invalid_arg "Simplex.solve: |b| must equal the number of rows of a";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Simplex.solve: every row of a must have length |c|")
    a;
  let check v =
    if not (Float.is_finite v) then
      invalid_arg "Simplex.solve: non-finite coefficient"
  in
  Array.iter check c;
  Array.iter check b;
  Array.iter (Array.iter check) a;
  (m, n)

(* Tableau state: [rows] is an m x (nvars + 1) matrix (last column = rhs),
   [basis.(i)] is the variable basic in row i.  Reduced costs are
   recomputed from scratch each iteration — O(m n) per pivot, which is the
   robust choice at the problem sizes in this repository. *)
type tableau = {
  mutable rows : float array array;
  mutable basis : int array;
  nvars : int;
}

let pivot t r col =
  let row = t.rows.(r) in
  let p = row.(col) in
  Array.iteri (fun j v -> row.(j) <- v /. p) row;
  Array.iteri
    (fun i other ->
      if i <> r then begin
        let k = other.(col) in
        if Float.abs k > 0.0 then
          Array.iteri (fun j v -> other.(j) <- v -. (k *. row.(j))) other
      end)
    t.rows;
  t.basis.(r) <- col

(* One simplex phase, maximizing [cost] (indexed by variable, length
   nvars).  [allowed v] filters entering variables (used to bar
   artificials in phase 2).  Returns [`Optimal] or [`Unbounded]. *)
let optimize t ~cost ~allowed =
  let m = Array.length t.rows in
  let width = t.nvars + 1 in
  let reduced = Array.make t.nvars 0.0 in
  let rec loop iter =
    if iter > max_iterations then
      failwith "Simplex: iteration limit exceeded (cycling?)";
    for j = 0 to t.nvars - 1 do
      let z = ref 0.0 in
      for i = 0 to m - 1 do
        let cb = cost.(t.basis.(i)) in
        if cb <> 0.0 then z := !z +. (cb *. t.rows.(i).(j))
      done;
      reduced.(j) <- cost.(j) -. !z
    done;
    (* Bland: entering variable = smallest index with positive reduced
       cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.nvars - 1 do
         if allowed j && reduced.(j) > eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test; Bland tie-break on the smallest basic variable. *)
      let best_row = ref (-1) and best_ratio = ref infinity in
      for i = 0 to m - 1 do
        let coeff = t.rows.(i).(col) in
        if coeff > eps then begin
          let ratio = t.rows.(i).(width - 1) /. coeff in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
                && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t !best_row col;
        loop (iter + 1)
      end
    end
  in
  loop 0

let objective_value t ~cost =
  let z = ref 0.0 in
  Array.iteri
    (fun i v ->
      let cb = cost.(v) in
      if cb <> 0.0 then z := !z +. (cb *. t.rows.(i).(Array.length t.rows.(i) - 1)))
    t.basis;
  !z

let solve ~c ~a ~b =
  let m, n = validate ~c ~a ~b in
  if m = 0 then
    (* No constraints: optimal iff no profitable direction. *)
    if Array.exists (fun cj -> cj > eps) c then Unbounded
    else Optimal { objective = 0.0; x = Array.make n 0.0; dual = [||] }
  else begin
    let negated = Array.map (fun bi -> bi < 0.0) b in
    let n_art = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 negated in
    let nvars = n + m + n_art in
    let width = nvars + 1 in
    let rows = Array.init m (fun _ -> Array.make width 0.0) in
    let basis = Array.make m 0 in
    let art_of_row = Array.make m (-1) in
    let next_art = ref (n + m) in
    for i = 0 to m - 1 do
      let sign = if negated.(i) then -1.0 else 1.0 in
      for j = 0 to n - 1 do
        rows.(i).(j) <- sign *. a.(i).(j)
      done;
      rows.(i).(n + i) <- sign;
      rows.(i).(width - 1) <- sign *. b.(i);
      if negated.(i) then begin
        rows.(i).(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        art_of_row.(i) <- !next_art;
        incr next_art
      end
      else basis.(i) <- n + i
    done;
    let t = { rows; basis; nvars } in
    let is_artificial v = v >= n + m in
    let infeasible = ref false in
    if n_art > 0 then begin
      let cost1 = Array.init nvars (fun v -> if is_artificial v then -1.0 else 0.0) in
      (match optimize t ~cost:cost1 ~allowed:(fun _ -> true) with
      | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
      | `Optimal -> ());
      if objective_value t ~cost:cost1 < -.eps then infeasible := true
      else
        (* Drive any artificial still basic (at level 0) out of the basis;
           if its row has no usable pivot the row is redundant and can be
           neutralised. *)
        Array.iteri
          (fun i v ->
            if is_artificial v then begin
              let found = ref (-1) in
              (try
                 for j = 0 to (n + m) - 1 do
                   if Float.abs t.rows.(i).(j) > eps then begin
                     found := j;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !found >= 0 then pivot t i !found
              else begin
                (* Redundant row: zero it so it can never constrain
                   phase 2. *)
                Array.fill t.rows.(i) 0 width 0.0;
                t.rows.(i).(v) <- 1.0
              end
            end)
          t.basis
    end;
    if !infeasible then Infeasible
    else begin
      let cost2 = Array.init nvars (fun v -> if v < n then c.(v) else 0.0) in
      match optimize t ~cost:cost2 ~allowed:(fun v -> not (is_artificial v)) with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let x = Array.make n 0.0 in
        Array.iteri
          (fun i v -> if v < n then x.(v) <- t.rows.(i).(width - 1))
          t.basis;
        (* Dual of row i = reduced-cost magnitude on its slack column,
           sign-corrected for rows that were negated. *)
        let dual =
          Array.init m (fun i ->
              let j = n + i in
              let z = ref 0.0 in
              Array.iteri
                (fun k v ->
                  let cb = cost2.(v) in
                  if cb <> 0.0 then z := !z +. (cb *. t.rows.(k).(j)))
                t.basis;
              let y = !z in
              if negated.(i) then -.y else y)
        in
        Optimal { objective = objective_value t ~cost:cost2; x; dual }
    end
  end

let pp_result fmt = function
  | Unbounded -> Format.fprintf fmt "unbounded"
  | Infeasible -> Format.fprintf fmt "infeasible"
  | Optimal { objective; x; _ } ->
    Format.fprintf fmt "optimal %.6g at (%a)" objective
      (Format.pp_print_array
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         (fun f v -> Format.fprintf f "%.6g" v))
      x

let feasible ~a ~b ~x ~eps =
  let ok = ref true in
  Array.iter (fun xi -> if xi < -.eps then ok := false) x;
  Array.iteri
    (fun i row ->
      let lhs = ref 0.0 in
      Array.iteri (fun j v -> lhs := !lhs +. (v *. x.(j))) row;
      if !lhs > b.(i) +. eps then ok := false)
    a;
  !ok
