(** Brute-force LP solver by vertex enumeration.

    For [maximize c.x  s.t.  A x <= b, x >= 0] with a bounded feasible
    region, the optimum lies at a vertex, i.e. at the intersection of [n]
    linearly independent active constraints drawn from the rows of [A]
    and the axes [x_j = 0].  This solver tries every such combination —
    exponential, so only usable for the tiny instances in tests, where it
    serves as an independent oracle for {!Simplex}. *)

val best_vertex :
  c:float array -> a:float array array -> b:float array
  -> (float * float array) option
(** [best_vertex ~c ~a ~b] is [Some (objective, x)] for the best feasible
    vertex, or [None] when no feasible vertex exists (for these
    inequality systems with [x >= 0], the origin is feasible whenever
    [b >= 0], so [None] implies infeasibility).  Raises
    [Invalid_argument] on dimension mismatch or [n > 10]. *)

val feasible_vertices :
  a:float array array -> b:float array -> float array list
(** All vertices of [{x : A x <= b, x >= 0}], deduplicated, in
    lexicographic order — the corner points of the paper's Fig. 1c
    throughput polytope.  Same size limits as {!best_vertex}. *)
