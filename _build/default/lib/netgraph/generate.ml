let pairwise_overlap ~n ~cap_bps ?(connector_bps = 1_000_000_000)
    ?(link_delay = Engine.Time.ms 1) () =
  if n < 2 then invalid_arg "Generate.pairwise_overlap: n must be >= 2";
  let b = Topology.builder () in
  let s = Topology.add_node b "s" in
  let d = Topology.add_node b "d" in
  (* One bottleneck link per unordered pair, entered at a_(i,j) and left
     at z_(i,j). *)
  let pair_nodes = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = Topology.add_node b (Printf.sprintf "a%d_%d" i j) in
      let z = Topology.add_node b (Printf.sprintf "z%d_%d" i j) in
      ignore
        (Topology.add_link b ~u:a ~v:z ~capacity_bps:(cap_bps i j)
           ~delay:link_delay);
      Hashtbl.replace pair_nodes (i, j) (a, z)
    done
  done;
  (* Path i traverses its pairs in increasing partner order, hopping
     through private relay nodes so connectors are never shared. *)
  let connector u v =
    ignore
      (Topology.add_link b ~u ~v ~capacity_bps:connector_bps ~delay:link_delay)
  in
  let paths_nodes =
    List.init n (fun i ->
        let pairs =
          List.filter_map
            (fun j ->
              if j = i then None
              else Some (if i < j then (i, j) else (j, i)))
            (List.init n (fun j -> j))
        in
        let rec thread at acc k = function
          | [] ->
            let relay = Topology.add_node b (Printf.sprintf "r%d_%d" i k) in
            connector at relay;
            connector relay d;
            List.rev (d :: relay :: acc)
          | pair :: rest ->
            let a, z = Hashtbl.find pair_nodes pair in
            let relay = Topology.add_node b (Printf.sprintf "r%d_%d" i k) in
            connector at relay;
            connector relay a;
            thread z (z :: a :: relay :: acc) (k + 1) rest
        in
        thread s [ s ] 0 pairs)
  in
  let topo = Topology.build b in
  (topo, List.map (Path.of_nodes topo) paths_nodes)

let paper_caps i j =
  match (i, j) with
  | 0, 1 -> Topology.mbps 40
  | 0, 2 -> Topology.mbps 60
  | 1, 2 -> Topology.mbps 80
  | _ -> invalid_arg "Generate.paper_caps: defined for pairs of 0..2"

let spread_caps ~base_mbps ~step_mbps i j =
  Topology.mbps (base_mbps + (step_mbps * (i + j)))

let dumbbell ~flows ~bottleneck_bps ?(access_bps = 1_000_000_000)
    ?(delay = Engine.Time.ms 2) () =
  if flows < 1 then invalid_arg "Generate.dumbbell: flows must be >= 1";
  let b = Topology.builder () in
  let l = Topology.add_node b "l" in
  let r = Topology.add_node b "r" in
  ignore (Topology.add_link b ~u:l ~v:r ~capacity_bps:bottleneck_bps ~delay);
  let ends =
    List.init flows (fun i ->
        let a = Topology.add_node b (Printf.sprintf "a%d" i) in
        let z = Topology.add_node b (Printf.sprintf "z%d" i) in
        ignore (Topology.add_link b ~u:a ~v:l ~capacity_bps:access_bps ~delay);
        ignore (Topology.add_link b ~u:r ~v:z ~capacity_bps:access_bps ~delay);
        (a, z))
  in
  let topo = Topology.build b in
  let paths =
    List.map (fun (a, z) -> Path.of_nodes topo [ a; l; r; z ]) ends
  in
  (topo, paths)

let parking_lot ~hops ~cap_bps ?(delay = Engine.Time.ms 2) () =
  if hops < 1 then invalid_arg "Generate.parking_lot: hops must be >= 1";
  let b = Topology.builder () in
  let backbone =
    Array.init (hops + 1) (fun i -> Topology.add_node b (Printf.sprintf "n%d" i))
  in
  for i = 0 to hops - 1 do
    ignore
      (Topology.add_link b ~u:backbone.(i) ~v:backbone.(i + 1)
         ~capacity_bps:cap_bps ~delay)
  done;
  let cross_ends =
    List.init hops (fun i ->
        let src = Topology.add_node b (Printf.sprintf "c%d_in" i) in
        let dst = Topology.add_node b (Printf.sprintf "c%d_out" i) in
        ignore
          (Topology.add_link b ~u:src ~v:backbone.(i)
             ~capacity_bps:(10 * cap_bps) ~delay);
        ignore
          (Topology.add_link b ~u:backbone.(i + 1) ~v:dst
             ~capacity_bps:(10 * cap_bps) ~delay);
        (src, dst, i))
  in
  let topo = Topology.build b in
  let e2e =
    Path.of_nodes topo (Array.to_list backbone)
  in
  let crosses =
    List.map
      (fun (src, dst, i) ->
        Path.of_nodes topo [ src; backbone.(i); backbone.(i + 1); dst ])
      cross_ends
  in
  (topo, e2e, crosses)
