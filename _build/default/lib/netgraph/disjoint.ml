(* Bhandari's algorithm:
   1. take the shortest path P1;
   2. in a directed copy of the graph, reverse P1's arcs and negate their
      weights;
   3. run Bellman-Ford (negative arcs, no negative cycles) for P2;
   4. cancel link uses appearing in opposite directions, then decompose
      the remaining arcs into two paths. *)

type arc = { from_ : int; to_ : int; link_id : int; w : int }

let arcs_of topo ~weight ~p1 =
  let on_p1 = Hashtbl.create 8 in
  (* direction of use: link id -> (from, to) *)
  let nodes = p1.Path.nodes in
  Array.iteri
    (fun i lid -> Hashtbl.replace on_p1 lid (nodes.(i), nodes.(i + 1)))
    p1.Path.links;
  let out = ref [] in
  Array.iter
    (fun (l : Topology.link) ->
      let w = weight l in
      if w < 0 then invalid_arg "Disjoint: negative weight";
      match Hashtbl.find_opt on_p1 l.id with
      | Some (a, b) ->
        (* Keep only the reversed, negative-cost arc. *)
        out := { from_ = b; to_ = a; link_id = l.id; w = -w } :: !out
      | None ->
        out := { from_ = l.u; to_ = l.v; link_id = l.id; w } :: !out;
        out := { from_ = l.v; to_ = l.u; link_id = l.id; w } :: !out)
    (Topology.links topo);
  !out

let bellman_ford_arcs ~n ~arcs ~src =
  let dist = Array.make n max_int in
  let pred = Array.make n None in
  dist.(src) <- 0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    List.iter
      (fun a ->
        if dist.(a.from_) <> max_int && dist.(a.from_) + a.w < dist.(a.to_)
        then begin
          dist.(a.to_) <- dist.(a.from_) + a.w;
          pred.(a.to_) <- Some a;
          changed := true
        end)
      arcs
  done;
  (dist, pred)

(* Walk from [src] to [dst] through a mutable multimap of directed arcs,
   erasing loops so the result is a simple path. *)
let extract_path topo ~src ~dst outgoing =
  let rec walk node acc =
    if node = dst then List.rev acc
    else
      match Hashtbl.find_opt outgoing node with
      | None | Some [] -> failwith "Disjoint: broken decomposition"
      | Some ((lid, next) :: rest) ->
        Hashtbl.replace outgoing node rest;
        walk next ((lid, next) :: acc)
  in
  let steps = walk src [] in
  (* Loop erasure: when a step returns to a node already on the kept
     path, discard the cycle (everything after the earlier visit,
     including the returning step itself). *)
  let rev_steps = ref [] in
  List.iter
    (fun (lid, node) ->
      if node = src then rev_steps := []
      else if List.exists (fun (_, n) -> n = node) !rev_steps then begin
        let rec cut_back = function
          | ((_, n) :: _) as kept when n = node -> kept
          | _ :: rest -> cut_back rest
          | [] -> assert false
        in
        rev_steps := cut_back !rev_steps
      end
      else rev_steps := (lid, node) :: !rev_steps)
    steps;
  let links = List.rev_map fst !rev_steps in
  Path.of_links topo ~src links

let link_disjoint_pair topo ~src ~dst ~weight =
  if src = dst then invalid_arg "Disjoint: src = dst";
  match Shortest.shortest_path topo ~src ~dst ~weight with
  | None -> None
  | Some p1 -> (
    let arcs = arcs_of topo ~weight ~p1 in
    let n = Topology.num_nodes topo in
    let dist, pred = bellman_ford_arcs ~n ~arcs ~src in
    if dist.(dst) = max_int then None
    else begin
      (* Recover P2's arc list. *)
      let rec back node acc =
        if node = src then acc
        else
          match pred.(node) with
          | None -> acc
          | Some a -> back a.from_ (a :: acc)
      in
      let p2_arcs = back dst [] in
      (* Directed uses of each path; cancel opposite-direction pairs. *)
      let uses = Hashtbl.create 16 in
      let add from_ to_ lid =
        match Hashtbl.find_opt uses lid with
        | Some (f, t) when f = to_ && t = from_ -> Hashtbl.remove uses lid
        | _ -> Hashtbl.replace uses lid (from_, to_)
      in
      let nodes = p1.Path.nodes in
      Array.iteri (fun i lid -> add nodes.(i) nodes.(i + 1) lid) p1.Path.links;
      List.iter (fun a -> add a.from_ a.to_ a.link_id) p2_arcs;
      (* Decompose the union into two walks from src. *)
      let outgoing = Hashtbl.create 16 in
      Hashtbl.iter
        (fun lid (f, t) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt outgoing f) in
          Hashtbl.replace outgoing f ((lid, t) :: cur))
        uses;
      match
        let a = extract_path topo ~src ~dst outgoing in
        let b = extract_path topo ~src ~dst outgoing in
        (a, b)
      with
      | a, b ->
        let wa = Kshortest.path_weight topo weight a
        and wb = Kshortest.path_weight topo weight b in
        if wa <= wb then Some (a, b) else Some (b, a)
      | exception Failure _ -> None
    end)

(* Tarjan bridge finding: a link (u, v) is a bridge iff low(v) > disc(u)
   in a DFS of the multigraph; parallel links are never bridges, which
   the "skip only the tree edge itself" rule handles naturally. *)
let bridges topo =
  let n = Topology.num_nodes topo in
  let disc = Array.make n (-1) in
  let low = Array.make n max_int in
  let timer = ref 0 in
  let found = ref [] in
  let rec dfs u ~via =
    disc.(u) <- !timer;
    low.(u) <- !timer;
    incr timer;
    List.iter
      (fun (lid, peer) ->
        if lid <> via then
          if disc.(peer) < 0 then begin
            dfs peer ~via:lid;
            if low.(peer) < low.(u) then low.(u) <- low.(peer);
            if low.(peer) > disc.(u) then found := lid :: !found
          end
          else if disc.(peer) < low.(u) then low.(u) <- disc.(peer))
      (Topology.neighbours topo u)
  in
  for u = 0 to n - 1 do
    if disc.(u) < 0 then dfs u ~via:(-1)
  done;
  List.sort_uniq Int.compare !found
