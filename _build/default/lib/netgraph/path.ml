type t = { nodes : int array; links : int array }

let of_nodes topo node_list =
  let nodes = Array.of_list node_list in
  let n = Array.length nodes in
  if n < 2 then invalid_arg "Path.of_nodes: need at least two nodes";
  let seen = Hashtbl.create n in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg "Path.of_nodes: repeated node (paths must be simple)";
      Hashtbl.add seen v ())
    nodes;
  let links =
    Array.init (n - 1) (fun i ->
        match Topology.find_link topo ~u:nodes.(i) ~v:nodes.(i + 1) with
        | Some l -> l.Topology.id
        | None ->
          invalid_arg
            (Printf.sprintf "Path.of_nodes: no link %s -- %s"
               (Topology.node_name topo nodes.(i))
               (Topology.node_name topo nodes.(i + 1))))
  in
  { nodes; links }

let of_names topo names = of_nodes topo (List.map (Topology.node_id topo) names)

let of_links topo ~src link_ids =
  let rec walk at acc = function
    | [] -> List.rev acc
    | lid :: rest ->
      let l = Topology.link topo lid in
      let next = Topology.other_end l at in
      walk next (next :: acc) rest
  in
  let nodes = src :: walk src [] link_ids in
  let p = { nodes = Array.of_list nodes; links = Array.of_list link_ids } in
  if Array.length p.nodes < 2 then
    invalid_arg "Path.of_links: need at least one link";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg "Path.of_links: repeated node";
      Hashtbl.add seen v ())
    p.nodes;
  p

let src p = p.nodes.(0)
let dst p = p.nodes.(Array.length p.nodes - 1)
let hop_count p = Array.length p.links
let mem_link p lid = Array.exists (fun l -> l = lid) p.links

let one_way_delay topo p =
  Array.fold_left
    (fun acc lid -> Engine.Time.add acc (Topology.link topo lid).Topology.delay)
    Engine.Time.zero p.links

let bottleneck_bps topo p =
  Array.fold_left
    (fun acc lid -> min acc (Topology.link topo lid).Topology.capacity_bps)
    max_int p.links

let shared_links p q =
  Array.to_list p.links |> List.filter (fun lid -> mem_link q lid)

let disjoint p q = shared_links p q = []

let equal p q = p.nodes = q.nodes && p.links = q.links
let compare p q = Stdlib.compare (p.nodes, p.links) (q.nodes, q.links)

let pp topo fmt p =
  Format.pp_print_string fmt
    (String.concat " > "
       (Array.to_list (Array.map (Topology.node_name topo) p.nodes)))

let to_string topo p = Format.asprintf "%a" (pp topo) p
