(** Capacitated network topologies.

    An undirected multigraph: nodes are dense integer ids with
    human-readable names, links carry a capacity (bits per second) and a
    one-way propagation delay.  Links are undirected here — the simulator
    ({!Netsim}) instantiates an independent queue per direction, matching
    full-duplex Ethernet/veth semantics. *)

type t

type link = {
  id : int;
  u : int;
  v : int;
  capacity_bps : int;
  delay : Engine.Time.t;
}

(** {1 Construction} *)

type builder

val builder : unit -> builder

val add_node : builder -> string -> int
(** Registers a node and returns its id.  Names must be unique; raises
    [Invalid_argument] on duplicates. *)

val add_link :
  builder -> u:int -> v:int -> capacity_bps:int -> delay:Engine.Time.t -> int
(** Adds an undirected link and returns its id.  Self-loops, unknown
    nodes, and non-positive capacities are rejected. *)

val build : builder -> t
(** Freezes the builder into an immutable topology. *)

val mbps : int -> int
(** [mbps n] is [n] megabits per second expressed in bits per second. *)

(** {1 Access} *)

val num_nodes : t -> int
val num_links : t -> int
val node_name : t -> int -> string

val node_id : t -> string -> int
(** Raises [Not_found] for unknown names. *)

val link : t -> int -> link

val links : t -> link array
(** The backing array; callers must not mutate it. *)

val neighbours : t -> int -> (int * int) list
(** [neighbours t n] is the list of [(link_id, peer_node)] incident to
    [n], in insertion order. *)

val find_link : t -> u:int -> v:int -> link option
(** First link joining the two nodes, in either orientation. *)

val other_end : link -> int -> int
(** [other_end l n] is the endpoint of [l] that is not [n].  Raises
    [Invalid_argument] when [n] is not an endpoint. *)

val pp : Format.formatter -> t -> unit
