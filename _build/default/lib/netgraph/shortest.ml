type weight = Topology.link -> int

let hops (_ : Topology.link) = 1
let delay_ns (l : Topology.link) = l.Topology.delay

let no_filter _ = false

let dijkstra ?(avoid_links = no_filter) ?(avoid_nodes = no_filter) topo ~src
    ~weight =
  let n = Topology.num_nodes topo in
  let dist = Array.make n max_int in
  let via = Array.make n (-1) in
  let done_ = Array.make n false in
  let heap : int Engine.Heap.t = Engine.Heap.create () in
  dist.(src) <- 0;
  Engine.Heap.push heap ~key:0 ~tie:src src;
  let rec drain () =
    match Engine.Heap.pop heap with
    | None -> ()
    | Some (d, _, u) ->
      if not done_.(u) && d = dist.(u) then begin
        done_.(u) <- true;
        List.iter
          (fun (lid, peer) ->
            if not (avoid_links lid) && not (avoid_nodes peer) then begin
              let l = Topology.link topo lid in
              let w = weight l in
              if w < 0 then invalid_arg "Shortest.dijkstra: negative weight";
              let nd = d + w in
              if nd < dist.(peer) then begin
                dist.(peer) <- nd;
                via.(peer) <- lid;
                Engine.Heap.push heap ~key:nd ~tie:peer peer
              end
            end)
          (Topology.neighbours topo u)
      end;
      drain ()
  in
  if not (avoid_nodes src) then drain ();
  (dist, via)

let walk_back topo ~src ~dst via =
  let rec go node acc =
    if node = src then Some acc
    else
      let lid = via.(node) in
      if lid < 0 then None
      else
        let l = Topology.link topo lid in
        go (Topology.other_end l node) (lid :: acc)
  in
  go dst []

let shortest_path ?avoid_links ?avoid_nodes topo ~src ~dst ~weight =
  let dist, via = dijkstra ?avoid_links ?avoid_nodes topo ~src ~weight in
  if dist.(dst) = max_int then None
  else
    match walk_back topo ~src ~dst via with
    | None -> None
    | Some [] -> None (* src = dst *)
    | Some links -> Some (Path.of_links topo ~src links)

let bellman_ford topo ~src ~weight =
  let n = Topology.num_nodes topo in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    Array.iter
      (fun l ->
        let w = weight l in
        if w < 0 then invalid_arg "Shortest.bellman_ford: negative weight";
        let relax a b =
          if dist.(a) <> max_int && dist.(a) + w < dist.(b) then begin
            dist.(b) <- dist.(a) + w;
            changed := true
          end
        in
        relax l.Topology.u l.Topology.v;
        relax l.Topology.v l.Topology.u)
      (Topology.links topo)
  done;
  dist
