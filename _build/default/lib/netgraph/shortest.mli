(** Single-source shortest paths. *)

type weight = Topology.link -> int
(** Non-negative arc weight.  Common choices: {!hops} and {!delay_ns}. *)

val hops : weight
val delay_ns : weight

val dijkstra :
  ?avoid_links:(int -> bool) ->
  ?avoid_nodes:(int -> bool) ->
  Topology.t -> src:int -> weight:weight -> int array * int array
(** [dijkstra t ~src ~weight] returns [(dist, via)] where [dist.(n)] is
    the shortest distance to [n] ([max_int] when unreachable) and
    [via.(n)] the link id used to enter [n] ([-1] for [src] and
    unreachable nodes).  [avoid_*] prune links/nodes (used by Yen's
    algorithm).  Raises [Invalid_argument] on a negative weight. *)

val shortest_path :
  ?avoid_links:(int -> bool) ->
  ?avoid_nodes:(int -> bool) ->
  Topology.t -> src:int -> dst:int -> weight:weight -> Path.t option

val bellman_ford :
  Topology.t -> src:int -> weight:weight -> int array
(** Distances by Bellman–Ford; an independent oracle for {!dijkstra} in
    tests.  Weights must still be non-negative (undirected links cannot
    carry negative weights without creating negative cycles). *)
