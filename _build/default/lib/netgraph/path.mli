(** Forwarding paths and overlap analysis.

    A path is a loop-free node sequence together with the links it
    traverses.  The paper's subject is paths that are only {e partially}
    disjoint, so this module also quantifies how two paths overlap. *)

type t = private {
  nodes : int array;  (** node sequence, length >= 2 *)
  links : int array;  (** link ids, length = |nodes| - 1 *)
}

val of_nodes : Topology.t -> int list -> t
(** Resolves consecutive node pairs to links (first matching link when
    parallel links exist).  Raises [Invalid_argument] when a hop has no
    link, the path is shorter than two nodes, or a node repeats. *)

val of_names : Topology.t -> string list -> t
(** Convenience wrapper over {!of_nodes} using node names. *)

val of_links : Topology.t -> src:int -> int list -> t
(** Builds a path from [src] along the given link ids. *)

val src : t -> int
val dst : t -> int
val hop_count : t -> int
val mem_link : t -> int -> bool

val one_way_delay : Topology.t -> t -> Engine.Time.t
(** Sum of link propagation delays (excludes transmission time). *)

val bottleneck_bps : Topology.t -> t -> int
(** Smallest link capacity along the path. *)

val shared_links : t -> t -> int list
(** Link ids common to both paths, in the first path's order. *)

val disjoint : t -> t -> bool
(** [true] when the paths share no link (node sharing is allowed, as in
    the paper's network, where all paths meet at [s] and [d]). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Topology.t -> Format.formatter -> t -> unit
val to_string : Topology.t -> t -> string
