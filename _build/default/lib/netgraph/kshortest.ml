let path_weight topo weight p =
  Array.fold_left
    (fun acc lid -> acc + weight (Topology.link topo lid))
    0 p.Path.links

(* Candidate pool ordered by (weight, node sequence); a sorted list is
   ample at these sizes. *)
module Cand = struct
  let compare (w1, p1) (w2, p2) =
    match Int.compare w1 w2 with 0 -> Path.compare p1 p2 | c -> c

  let insert c pool = List.sort_uniq compare (c :: pool)
end

let yen topo ~src ~dst ~k ~weight =
  if k < 0 then invalid_arg "Kshortest.yen: k < 0";
  if src = dst then invalid_arg "Kshortest.yen: src = dst";
  match Shortest.shortest_path topo ~src ~dst ~weight with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let pool = ref [] in
    let continue = ref (k > 1) in
    while !continue && List.length !accepted < k do
      let prev = List.hd !accepted in
      (* For each prefix of the most recently accepted path, look for a
         deviation ("spur") that avoids the next links of all accepted
         paths sharing that prefix, and all prefix nodes. *)
      let prev_nodes = prev.Path.nodes in
      for spur_idx = 0 to Array.length prev_nodes - 2 do
        let spur_node = prev_nodes.(spur_idx) in
        let root_nodes = Array.sub prev_nodes 0 (spur_idx + 1) in
        let root_links = Array.sub prev.Path.links 0 spur_idx in
        let banned_links = Hashtbl.create 8 in
        List.iter
          (fun (p : Path.t) ->
            if
              Array.length p.Path.nodes > spur_idx
              && Array.sub p.Path.nodes 0 (spur_idx + 1) = root_nodes
            then Hashtbl.replace banned_links p.Path.links.(spur_idx) ())
          !accepted;
        let banned_nodes = Hashtbl.create 8 in
        Array.iteri
          (fun i nid -> if i < spur_idx then Hashtbl.replace banned_nodes nid ())
          root_nodes;
        let spur =
          Shortest.shortest_path topo ~src:spur_node ~dst ~weight
            ~avoid_links:(Hashtbl.mem banned_links)
            ~avoid_nodes:(Hashtbl.mem banned_nodes)
        in
        match spur with
        | None -> ()
        | Some tail ->
          let links = Array.append root_links tail.Path.links in
          (match Path.of_links topo ~src (Array.to_list links) with
          | candidate ->
            if not (List.exists (Path.equal candidate) !accepted) then
              pool :=
                Cand.insert (path_weight topo weight candidate, candidate) !pool
          | exception Invalid_argument _ -> () (* spur rejoined the root *))
      done;
      match !pool with
      | [] -> continue := false
      | (_, best) :: rest ->
        pool := rest;
        accepted := best :: !accepted
    done;
    List.rev !accepted
