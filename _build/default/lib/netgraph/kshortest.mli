(** Yen's k-shortest simple paths.

    The demo's operator "offers a selection of forwarding paths"; this is
    the standard way to enumerate candidate routes between a node pair in
    increasing length order.  Runtime is [O(k n (m + n log n))] — fine for
    the small topologies studied here. *)

val yen :
  Topology.t -> src:int -> dst:int -> k:int -> weight:Shortest.weight
  -> Path.t list
(** Up to [k] loop-free paths in non-decreasing weight order (fewer when
    the graph has fewer simple paths).  Ties are broken deterministically
    by node sequence.  Raises [Invalid_argument] when [k < 0] or
    [src = dst]. *)

val path_weight : Topology.t -> Shortest.weight -> Path.t -> int
