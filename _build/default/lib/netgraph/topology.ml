type link = {
  id : int;
  u : int;
  v : int;
  capacity_bps : int;
  delay : Engine.Time.t;
}

type t = {
  names : string array;
  links_arr : link array;
  adj : (int * int) list array; (* node -> (link id, peer) in insertion order *)
  by_name : (string, int) Hashtbl.t;
}

type builder = {
  mutable b_names : string list; (* reversed *)
  mutable b_count : int;
  mutable b_links : link list; (* reversed *)
  mutable b_nlinks : int;
  seen : (string, int) Hashtbl.t;
}

let builder () =
  { b_names = []; b_count = 0; b_links = []; b_nlinks = 0;
    seen = Hashtbl.create 16 }

let add_node b name =
  if Hashtbl.mem b.seen name then
    invalid_arg (Printf.sprintf "Topology.add_node: duplicate node %S" name);
  let id = b.b_count in
  Hashtbl.add b.seen name id;
  b.b_names <- name :: b.b_names;
  b.b_count <- id + 1;
  id

let add_link b ~u ~v ~capacity_bps ~delay =
  if u = v then invalid_arg "Topology.add_link: self-loop";
  if u < 0 || u >= b.b_count || v < 0 || v >= b.b_count then
    invalid_arg "Topology.add_link: unknown node";
  if capacity_bps <= 0 then
    invalid_arg "Topology.add_link: capacity must be positive";
  if Engine.Time.( < ) delay Engine.Time.zero then
    invalid_arg "Topology.add_link: negative delay";
  let id = b.b_nlinks in
  b.b_links <- { id; u; v; capacity_bps; delay } :: b.b_links;
  b.b_nlinks <- id + 1;
  id

let build b =
  let names = Array.of_list (List.rev b.b_names) in
  let links_arr = Array.of_list (List.rev b.b_links) in
  let adj = Array.make (Array.length names) [] in
  (* Build adjacency in insertion order. *)
  Array.iter
    (fun l ->
      adj.(l.u) <- (l.id, l.v) :: adj.(l.u);
      adj.(l.v) <- (l.id, l.u) :: adj.(l.v))
    links_arr;
  Array.iteri (fun i lst -> adj.(i) <- List.rev lst) adj;
  let by_name = Hashtbl.copy b.seen in
  { names; links_arr; adj; by_name }

let mbps n = n * 1_000_000
let num_nodes t = Array.length t.names
let num_links t = Array.length t.links_arr
let node_name t n = t.names.(n)
let node_id t name = Hashtbl.find t.by_name name
let link t i = t.links_arr.(i)
let links t = t.links_arr
let neighbours t n = t.adj.(n)

let find_link t ~u ~v =
  let rec scan = function
    | [] -> None
    | (lid, peer) :: rest -> if peer = v then Some t.links_arr.(lid) else scan rest
  in
  if u < 0 || u >= num_nodes t then None else scan t.adj.(u)

let other_end l n =
  if l.u = n then l.v
  else if l.v = n then l.u
  else invalid_arg "Topology.other_end: node not an endpoint"

let pp fmt t =
  Format.fprintf fmt "@[<v>topology: %d nodes, %d links" (num_nodes t)
    (num_links t);
  Array.iter
    (fun l ->
      Format.fprintf fmt "@,  %s -- %s  %d bps, %a" t.names.(l.u) t.names.(l.v)
        l.capacity_bps Engine.Time.pp l.delay)
    t.links_arr;
  Format.fprintf fmt "@]"
