(** Topology generators.

    {!pairwise_overlap} generalises the paper's Fig. 1 construction from
    3 paths to [n]: a source, a destination, and one bottleneck link per
    unordered pair of paths, so that paths [i] and [j] share {e exactly}
    that link and nothing else.  The throughput LP then has the same
    "every pair couples" structure whose dimension the paper's intro
    worries about — letting the benchmarks study how each MPTCP
    congestion controller scales with the number of coupled paths.

    {!dumbbell} and {!parking_lot} are the standard fairness topologies
    used by the test-suite and the examples. *)

val pairwise_overlap :
  n:int ->
  cap_bps:(int -> int -> int) ->
  ?connector_bps:int ->
  ?link_delay:Engine.Time.t ->
  unit ->
  Topology.t * Path.t list
(** [pairwise_overlap ~n ~cap_bps ()] builds the network and its [n]
    paths (in index order, all from node ["s"] to node ["d"]).
    [cap_bps i j] (called with [i < j], 0-based) is the bottleneck
    capacity shared by paths [i] and [j]; connectors (default 1 Gbps) are
    private to a single path by construction, so the extracted constraint
    system is exactly [x_i + x_j <= cap i j].  Raises [Invalid_argument]
    when [n < 2]. *)

val paper_caps : int -> int -> int
(** The paper's capacities for [n = 3]: pairs (0,1) -> 40, (0,2) -> 60,
    (1,2) -> 80 Mbps. *)

val spread_caps : base_mbps:int -> step_mbps:int -> int -> int -> int
(** [spread_caps ~base_mbps ~step_mbps i j] is
    [base + step * (i + j)] Mbps — a deterministic ramp giving every
    pair a distinct bottleneck, used by the scaling benchmark. *)

val dumbbell :
  flows:int ->
  bottleneck_bps:int ->
  ?access_bps:int ->
  ?delay:Engine.Time.t ->
  unit ->
  Topology.t * (Path.t list)
(** [flows] sender/receiver pairs sharing one bottleneck; returns the
    per-flow paths [a_i > l > r > z_i]. *)

val parking_lot :
  hops:int ->
  cap_bps:int ->
  ?delay:Engine.Time.t ->
  unit ->
  Topology.t * Path.t * Path.t list
(** A chain of [hops] equal links: returns the end-to-end path and one
    single-hop cross path per link (each with its own endpoints) — the
    classic topology where an end-to-end flow competes with [hops]
    one-hop flows. *)
