(** Shortest pairs of link-disjoint paths (Bhandari's algorithm).

    The network operator in the paper pre-installs partially disjoint
    routes; this module computes the fully link-disjoint alternative,
    which examples use as a contrast to the paper's deliberately
    overlapping path set. *)

val link_disjoint_pair :
  Topology.t -> src:int -> dst:int -> weight:Shortest.weight
  -> (Path.t * Path.t) option
(** A minimum-total-weight pair of link-disjoint simple paths, or [None]
    when no such pair exists.  The shorter path comes first.  Node
    overlap is permitted (link-disjoint, not node-disjoint).  Raises
    [Invalid_argument] when [src = dst]. *)

val bridges : Topology.t -> int list
(** Link ids whose failure disconnects some pair of currently-connected
    nodes (Tarjan's bridge-finding via DFS low-links) — the single points
    of failure that multipath routing cannot route around.  Sorted. *)
