(** Maximum flow (Edmonds–Karp).

    Gives the single-commodity capacity between two nodes — an upper
    bound on what any multipath transport could ever carry, and the
    reference the paper's 90 Mbps optimum is naturally compared against
    (the LP optimum is lower because MPTCP is restricted to three fixed
    paths, while max-flow may split arbitrarily). *)

val max_flow : Topology.t -> src:int -> dst:int -> int
(** Maximum s-d flow in bits per second, treating every undirected link
    as usable at full capacity in each direction independently, matching
    the full-duplex simulator model.  Raises [Invalid_argument] when
    [src = dst]. *)

val min_cut : Topology.t -> src:int -> dst:int -> int list
(** Link ids of a minimum s-d cut (the saturated frontier found by the
    final residual search). *)
