lib/netgraph/disjoint.mli: Path Shortest Topology
