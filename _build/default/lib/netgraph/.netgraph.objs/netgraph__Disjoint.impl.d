lib/netgraph/disjoint.ml: Array Hashtbl Int Kshortest List Option Path Shortest Topology
