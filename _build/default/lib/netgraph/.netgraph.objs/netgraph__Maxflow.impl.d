lib/netgraph/maxflow.ml: Array Hashtbl Int List Queue Topology
