lib/netgraph/generate.ml: Array Engine Hashtbl List Path Printf Topology
