lib/netgraph/shortest.mli: Path Topology
