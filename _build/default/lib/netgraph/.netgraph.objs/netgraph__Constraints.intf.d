lib/netgraph/constraints.mli: Format Path Topology
