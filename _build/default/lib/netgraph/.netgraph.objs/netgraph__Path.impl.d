lib/netgraph/path.ml: Array Engine Format Hashtbl List Printf Stdlib String Topology
