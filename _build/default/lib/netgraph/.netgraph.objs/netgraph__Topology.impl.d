lib/netgraph/topology.ml: Array Engine Format Hashtbl List Printf
