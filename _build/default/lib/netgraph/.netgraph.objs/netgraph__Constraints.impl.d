lib/netgraph/constraints.ml: Array Float Format Hashtbl Int List Lp Path Printf String Topology
