lib/netgraph/shortest.ml: Array Engine List Path Topology
