lib/netgraph/path.mli: Engine Format Topology
