lib/netgraph/kshortest.mli: Path Shortest Topology
