lib/netgraph/topology.mli: Engine Format
