lib/netgraph/generate.mli: Engine Path Topology
