lib/netgraph/maxflow.mli: Topology
