lib/netgraph/kshortest.ml: Array Hashtbl Int List Path Shortest Topology
