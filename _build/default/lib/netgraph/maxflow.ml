type arc = {
  target : int;
  link_id : int;
  mutable cap : int; (* residual capacity *)
  mutable rev : int; (* index of the reverse arc in [adj.(target)] *)
}

type residual = { adj : arc array array }

let build topo =
  let n = Topology.num_nodes topo in
  let tmp = Array.make n [] in
  let add u v lid cap =
    let fwd = { target = v; link_id = lid; cap; rev = 0 } in
    let bwd = { target = u; link_id = lid; cap = 0; rev = 0 } in
    tmp.(u) <- fwd :: tmp.(u);
    tmp.(v) <- bwd :: tmp.(v);
    (fwd, bwd)
  in
  let pairs = ref [] in
  Array.iter
    (fun (l : Topology.link) ->
      (* Full duplex: an independent directed arc per direction. *)
      pairs := add l.u l.v l.id l.capacity_bps :: !pairs;
      pairs := add l.v l.u l.id l.capacity_bps :: !pairs)
    (Topology.links topo);
  let adj = Array.map (fun lst -> Array.of_list (List.rev lst)) tmp in
  (* Fix up reverse-arc indices now that positions are final. *)
  let index_of node arc =
    let found = ref (-1) in
    Array.iteri (fun i a -> if a == arc then found := i) adj.(node);
    !found
  in
  List.iter
    (fun (fwd, bwd) ->
      let fi = index_of bwd.target fwd and bi = index_of fwd.target bwd in
      fwd.rev <- bi;
      bwd.rev <- fi)
    !pairs;
  { adj }

let bfs r ~src ~dst =
  let n = Array.length r.adj in
  let prev = Array.make n None in
  let visited = Array.make n false in
  visited.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iteri
      (fun ai arc ->
        if arc.cap > 0 && not visited.(arc.target) then begin
          visited.(arc.target) <- true;
          prev.(arc.target) <- Some (u, ai);
          if arc.target = dst then found := true else Queue.add arc.target q
        end)
      r.adj.(u)
  done;
  if !found then Some prev else None

let augment r prev ~src ~dst =
  (* Find bottleneck then push. *)
  let rec bottleneck node acc =
    if node = src then acc
    else
      match prev.(node) with
      | None -> assert false
      | Some (u, ai) -> bottleneck u (min acc r.adj.(u).(ai).cap)
  in
  let delta = bottleneck dst max_int in
  let rec push node =
    if node <> src then
      match prev.(node) with
      | None -> assert false
      | Some (u, ai) ->
        let arc = r.adj.(u).(ai) in
        arc.cap <- arc.cap - delta;
        let back = r.adj.(arc.target).(arc.rev) in
        back.cap <- back.cap + delta;
        push u
  in
  push dst;
  delta

let run topo ~src ~dst =
  if src = dst then invalid_arg "Maxflow: src = dst";
  let r = build topo in
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    match bfs r ~src ~dst with
    | None -> continue := false
    | Some prev -> total := !total + augment r prev ~src ~dst
  done;
  (r, !total)

let max_flow topo ~src ~dst = snd (run topo ~src ~dst)

let min_cut topo ~src ~dst =
  let r, _ = run topo ~src ~dst in
  let n = Array.length r.adj in
  let reach = Array.make n false in
  reach.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun arc ->
        if arc.cap > 0 && not reach.(arc.target) then begin
          reach.(arc.target) <- true;
          Queue.add arc.target q
        end)
      r.adj.(u)
  done;
  let cut = Hashtbl.create 8 in
  Array.iteri
    (fun u arcs ->
      if reach.(u) then
        Array.iter
          (fun arc -> if not reach.(arc.target) then Hashtbl.replace cut arc.link_id ())
          arcs)
    r.adj;
  Hashtbl.fold (fun lid () acc -> lid :: acc) cut [] |> List.sort Int.compare
