lib/netsim/traffic.mli: Engine Net Packet
