lib/netsim/qdisc.ml: Engine Float
