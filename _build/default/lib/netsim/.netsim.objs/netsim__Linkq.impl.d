lib/netsim/linkq.ml: Engine Packet Qdisc Queue
