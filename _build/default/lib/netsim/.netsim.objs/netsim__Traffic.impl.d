lib/netsim/traffic.ml: Engine Net Packet
