lib/netsim/linkq.mli: Engine Packet Qdisc
