lib/netsim/net.ml: Array Engine Hashtbl Linkq List Netgraph Packet Qdisc
