lib/netsim/net.mli: Engine Linkq Netgraph Packet Qdisc
