lib/netsim/qdisc.mli: Engine
