(** Cross-traffic generators.

    The paper's network carries only the MPTCP flow, but the examples and
    ablations add background load to show how the optimum shifts when the
    model network is embedded "in the wild".  Both sources emit [Plain]
    packets (they do not react to loss). *)

type t

val stop : t -> unit
val packets_sent : t -> int
val bytes_sent : t -> int

val cbr :
  net:Net.t -> src:int -> dst:int -> tag:Packet.tag -> rate_bps:int
  -> ?pkt_bytes:int -> ?start:Engine.Time.t -> ?stop_at:Engine.Time.t
  -> unit -> t
(** Constant bit rate: one [pkt_bytes] packet (default 1500) every
    [pkt_bytes * 8 / rate_bps] seconds, from [start] (default 0) until
    [stop_at] (default: forever). *)

val on_off :
  net:Net.t -> rng:Engine.Rng.t -> src:int -> dst:int -> tag:Packet.tag
  -> rate_bps:int -> mean_on:Engine.Time.t -> mean_off:Engine.Time.t
  -> ?pkt_bytes:int -> ?start:Engine.Time.t -> ?stop_at:Engine.Time.t
  -> unit -> t
(** Exponential on/off source: bursts at [rate_bps] for an
    exponentially-distributed on-period, then stays silent for an
    exponentially-distributed off-period. *)
