let throughput events ~window ~until ?tag () =
  if Engine.Time.( <= ) window Engine.Time.zero then
    invalid_arg "Sampler.throughput: window must be positive";
  let nbins = (until + window - 1) / window in
  let bytes = Array.make (max nbins 1) 0 in
  Array.iter
    (fun (e : Capture.event) ->
      let keep = match tag with None -> true | Some t -> e.Capture.tag = t in
      if keep && e.Capture.time < until then begin
        let i = e.Capture.time / window in
        bytes.(i) <- bytes.(i) + e.Capture.bytes
      end)
    events;
  let w_s = Engine.Time.to_float_s window in
  let values =
    Array.map (fun b -> float_of_int (b * 8) /. w_s /. 1e6) bytes
  in
  Series.create ~t0:0.0 ~dt:w_s values

let per_tag capture ~window ~until =
  let events = Capture.events capture in
  let tags = Capture.tags capture in
  let per =
    List.map
      (fun tag -> (tag, throughput events ~window ~until ~tag ()))
      tags
  in
  let total = throughput events ~window ~until () in
  (per, total)
