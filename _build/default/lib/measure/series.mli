(** Uniformly-sampled time series (one value per sampling window). *)

type t = {
  t0 : float;      (** window 0 covers [\[t0, t0 + dt)], seconds *)
  dt : float;      (** sampling period in seconds *)
  values : float array;
}

val create : t0:float -> dt:float -> float array -> t
val length : t -> int
val time_at : t -> int -> float
(** End of window [i] — the x-coordinate used when plotting, matching how
    tshark's [io,stat] labels intervals. *)

val value_at : t -> int -> float
val max_value : t -> float
val mean : t -> float

val mean_from : t -> from_s:float -> float
(** Mean over windows ending at or after [from_s]; [nan] if none. *)

val mean_between : t -> from_s:float -> to_s:float -> float
(** Mean over windows ending in [\[from_s, to_s)]; [nan] if none. *)

val std_from : t -> from_s:float -> float
val map2 : t -> t -> f:(float -> float -> float) -> t
(** Pointwise combination; requires identical [t0]/[dt]/length. *)

val sum : t list -> t
(** Pointwise sum of equally-shaped series.  Raises on empty list. *)

val iteri : t -> f:(int -> float -> float -> unit) -> unit
(** [f i time value] for each window. *)
