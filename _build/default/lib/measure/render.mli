(** Rendering results as CSV (for external plotting) and as ASCII charts
    (so `dune exec bench/main.exe` shows the figures directly in the
    terminal). *)

val to_csv : header:string list -> rows:float list list -> string
(** Plain CSV; row lengths must match the header. *)

val series_csv : (string * Series.t) list -> string
(** Columns: [time_s] then one column per named series (all series must
    share shape). *)

val ascii_chart :
  ?width:int -> ?height:int -> ?y_max:float -> title:string
  -> (string * Series.t) list -> string
(** Multi-series line chart drawn with one glyph per series, a y-axis in
    the series' units and an x-axis in seconds.  Series must share
    shape. *)

val write_file : path:string -> string -> unit
