(** Convergence and stability metrics for throughput series.

    Quantifies the paper's prose: "CUBIC always reached the optimum but
    was unstable for short periods", "LIA never could reach the optimum",
    "OLIA took 20 s". *)

val time_to_reach :
  Series.t -> target:float -> ?tolerance:float -> ?hold:int -> unit
  -> float option
(** First time (seconds) at which the series reaches
    [target * (1 - tolerance)] and stays at or above it for [hold]
    consecutive windows (defaults: 5% tolerance, 3 windows).  [None] when
    it never does. *)

val fraction_above :
  Series.t -> target:float -> ?tolerance:float -> ?from_s:float -> unit
  -> float
(** Fraction of windows (ending at or after [from_s], default 0) at or
    above the tolerated target — a stability measure: 1.0 means the
    series, once sampled, never dipped below. *)

val coefficient_of_variation : Series.t -> from_s:float -> float
(** std/mean over the tail; lower is steadier. *)

val jain_fairness : float array -> float
(** Jain's index [(Σx)² / (n Σx²)]; 1.0 = perfectly even allocation.
    Raises on an empty array; returns 1.0 for all-zero input. *)

val dip_count : Series.t -> target:float -> ?tolerance:float -> unit -> int
(** Number of downward crossings of the tolerated target — how many times
    the "unstable short periods" occurred. *)
