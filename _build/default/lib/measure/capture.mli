(** Receiver-side packet capture — the simulator's tshark.

    The paper "captured the data stream by tshark at the destination
    node, then filtered the captured packets based on the tags".  A
    capture taps one node, records every TCP data packet's (time, tag,
    wire bytes) — including retransmissions, as a wire capture would —
    and is post-processed by {!Sampler} at any sampling period. *)

type event = {
  time : Engine.Time.t;
  tag : Packet.tag;
  bytes : int;  (** wire size *)
}

type t

val attach : Netsim.Net.t -> node:int -> ?conn:int -> unit -> t
(** Start capturing data packets arriving at [node]; with [conn], only
    that connection's packets are kept. *)

val create : unit -> t
(** Detached capture for feeding events manually (tests). *)

val record : t -> time:Engine.Time.t -> tag:Packet.tag -> bytes:int -> unit

val events : t -> event array
(** Snapshot in arrival order. *)

val count : t -> int
val bytes_for_tag : t -> Packet.tag -> int
val tags : t -> Packet.tag list
(** Distinct tags seen, sorted. *)
