(** Packet-level tracing — the simulator's [tcpdump -w] / text capture.

    Where {!Capture} records just enough for throughput sampling, a trace
    keeps the full packet summaries at chosen observation points, for
    debugging transports and for the CLI's [--trace] output.  Events can
    be filtered at attach time to bound memory. *)

type event = {
  time : Engine.Time.t;
  node : int;       (** where the packet was observed *)
  packet : Packet.t;
}

type t

val attach :
  Netsim.Net.t -> nodes:int list -> ?keep:(Packet.t -> bool)
  -> ?limit:int -> unit -> t
(** Observe every packet arriving at each of [nodes].  [keep] filters
    (default: keep all); recording stops silently after [limit] events
    (default 100_000) so a runaway trace cannot exhaust memory. *)

val conn_filter : int -> Packet.t -> bool
(** Keep only packets of the given MPTCP/TCP connection. *)

val data_filter : Packet.t -> bool
(** Keep only data-bearing TCP segments. *)

val events : t -> event array
val count : t -> int
val dropped : t -> int
(** Events discarded because [limit] was reached. *)

val to_text : ?max_lines:int -> Netsim.Net.t -> t -> string
(** tcpdump-flavoured rendering, one event per line:
    [time node: packet]. *)
