let to_csv ~header ~rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Render.to_csv: row width mismatch";
      Buffer.add_string buf
        (String.concat "," (List.map (Printf.sprintf "%.6g") row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let series_csv named =
  match named with
  | [] -> invalid_arg "Render.series_csv: no series"
  | (_, first) :: _ ->
    let n = Series.length first in
    let header = "time_s" :: List.map fst named in
    let rows =
      List.init n (fun i ->
          Series.time_at first i
          :: List.map (fun (_, s) -> Series.value_at s i) named)
    in
    to_csv ~header ~rows

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let ascii_chart ?(width = 72) ?(height = 18) ?y_max ~title named =
  match named with
  | [] -> invalid_arg "Render.ascii_chart: no series"
  | (_, first) :: _ ->
    let n = Series.length first in
    let top =
      match y_max with
      | Some v -> v
      | None ->
        let m =
          List.fold_left
            (fun acc (_, s) -> Float.max acc (Series.max_value s))
            0.0 named
        in
        if m <= 0.0 then 1.0 else m *. 1.05
    in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, s) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        for i = 0 to n - 1 do
          let x = if n <= 1 then 0 else i * (width - 1) / (n - 1) in
          let v = Float.max 0.0 (Series.value_at s i) in
          let y =
            int_of_float (Float.round (v /. top *. float_of_int (height - 1)))
          in
          let y = min (height - 1) y in
          grid.(height - 1 - y).(x) <- glyph
        done)
      named;
    let buf = Buffer.create 4096 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let y_label_width = 8 in
    Array.iteri
      (fun row line ->
        let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
        let label =
          if row mod 3 = 0 || row = height - 1 then
            Printf.sprintf "%*.1f |" (y_label_width - 2) (top *. frac)
          else String.make (y_label_width - 1) ' ' ^ "|"
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make (y_label_width - 1) ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    let t_last = if n = 0 then 0.0 else Series.time_at first (n - 1) in
    Buffer.add_string buf
      (Printf.sprintf "%*s0%*.3gs\n" (y_label_width - 1) "" (width - 1) t_last);
    Buffer.add_string buf "legend:";
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf " %c=%s" glyphs.(si mod Array.length glyphs) name))
      named;
    Buffer.add_char buf '\n';
    Buffer.contents buf

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)
