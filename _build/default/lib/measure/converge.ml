let threshold ~target ~tolerance = target *. (1.0 -. tolerance)

let time_to_reach series ~target ?(tolerance = 0.05) ?(hold = 3) () =
  let th = threshold ~target ~tolerance in
  let n = Series.length series in
  let result = ref None in
  let run = ref 0 in
  (try
     for i = 0 to n - 1 do
       if Series.value_at series i >= th then begin
         incr run;
         if !run >= hold then begin
           result := Some (Series.time_at series (i - hold + 1));
           raise Exit
         end
       end
       else run := 0
     done
   with Exit -> ());
  !result

let fraction_above series ~target ?(tolerance = 0.05) ?(from_s = 0.0) () =
  let th = threshold ~target ~tolerance in
  let total = ref 0 and above = ref 0 in
  Series.iteri series ~f:(fun _ time v ->
      if time >= from_s then begin
        incr total;
        if v >= th then incr above
      end);
  if !total = 0 then Float.nan
  else float_of_int !above /. float_of_int !total

let coefficient_of_variation series ~from_s =
  let m = Series.mean_from series ~from_s in
  if Float.is_nan m || m = 0.0 then Float.nan
  else Series.std_from series ~from_s /. m

let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Converge.jain_fairness: empty";
  let s = Array.fold_left ( +. ) 0.0 xs in
  let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)

let dip_count series ~target ?(tolerance = 0.05) () =
  let th = threshold ~target ~tolerance in
  let dips = ref 0 and above = ref false in
  Series.iteri series ~f:(fun _ _ v ->
      if v >= th then above := true
      else if !above then begin
        incr dips;
        above := false
      end);
  !dips
