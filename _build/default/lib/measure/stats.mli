(** Small descriptive-statistics toolkit for multi-seed experiment
    results: summarising a set of per-run measurements into mean, spread
    and percentiles, the way the sweep tables aggregate seeds. *)

type summary = {
  count : int;
  mean : float;
  std : float;      (** sample standard deviation (n-1); 0 for n = 1 *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
}

val summarise : float list -> summary option
(** [None] on an empty list; non-finite values are rejected with
    [Invalid_argument]. *)

val percentile : float array -> p:float -> float
(** Linear-interpolation percentile of an unsorted array, [p] in
    [\[0, 100\]].  Raises on empty input or out-of-range [p]. *)

val mean : float list -> float
(** [nan] on empty input. *)

val confidence95 : summary -> float
(** Half-width of a normal-approximation 95% confidence interval for the
    mean: [1.96 * std / sqrt count] (0 when count < 2). *)

val pp : Format.formatter -> summary -> unit
