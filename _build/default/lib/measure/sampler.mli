(** Post-processing a {!Capture} into throughput time series, the way the
    paper binned tshark captures at 10 ms and 100 ms. *)

val throughput :
  Capture.event array -> window:Engine.Time.t -> until:Engine.Time.t
  -> ?tag:Packet.tag -> unit -> Series.t
(** Wire throughput in Mbps per [window], covering [\[0, until)] (the
    number of windows is [ceil (until / window)]).  With [tag], only that
    path's packets count. *)

val per_tag :
  Capture.t -> window:Engine.Time.t -> until:Engine.Time.t
  -> (Packet.tag * Series.t) list * Series.t
(** One series per tag seen in the capture (sorted by tag) plus their
    total — the four curves of the paper's Fig. 2 panels. *)
