lib/measure/stats.mli: Format
