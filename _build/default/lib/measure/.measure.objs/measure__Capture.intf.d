lib/measure/capture.mli: Engine Netsim Packet
