lib/measure/series.ml: Array Float List
