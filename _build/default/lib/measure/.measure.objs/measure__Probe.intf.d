lib/measure/probe.mli: Engine Series
