lib/measure/trace.mli: Engine Netsim Packet
