lib/measure/converge.mli: Series
