lib/measure/stats.ml: Array Float Format List
