lib/measure/capture.ml: Array Engine Hashtbl Int List Netsim Packet
