lib/measure/render.mli: Series
