lib/measure/probe.ml: Array Engine Series
