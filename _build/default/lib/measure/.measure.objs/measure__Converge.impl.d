lib/measure/converge.ml: Array Float Series
