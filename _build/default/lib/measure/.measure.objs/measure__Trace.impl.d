lib/measure/trace.ml: Array Buffer Engine Format List Netgraph Netsim Packet Printf
