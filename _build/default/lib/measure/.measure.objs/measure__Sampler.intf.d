lib/measure/sampler.mli: Capture Engine Packet Series
