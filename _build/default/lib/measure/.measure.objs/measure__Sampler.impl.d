lib/measure/sampler.ml: Array Capture Engine List Series
