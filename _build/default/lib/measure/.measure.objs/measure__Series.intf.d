lib/measure/series.mli:
