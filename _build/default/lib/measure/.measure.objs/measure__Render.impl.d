lib/measure/render.ml: Array Buffer Float Fun List Printf Series String
