type t = { t0 : float; dt : float; values : float array }

let create ~t0 ~dt values =
  if dt <= 0.0 then invalid_arg "Series.create: dt must be positive";
  { t0; dt; values }

let length s = Array.length s.values
let time_at s i = s.t0 +. (float_of_int (i + 1) *. s.dt)
let value_at s i = s.values.(i)
let max_value s = Array.fold_left Float.max neg_infinity s.values

let mean s =
  if Array.length s.values = 0 then Float.nan
  else Array.fold_left ( +. ) 0.0 s.values /. float_of_int (Array.length s.values)

let fold_from s ~from_s ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun i v -> if time_at s i >= from_s then acc := f !acc v)
    s.values;
  !acc

let mean_from s ~from_s =
  let n = fold_from s ~from_s ~init:0 ~f:(fun acc _ -> acc + 1) in
  if n = 0 then Float.nan
  else fold_from s ~from_s ~init:0.0 ~f:( +. ) /. float_of_int n

let mean_between s ~from_s ~to_s =
  let n = ref 0 and acc = ref 0.0 in
  Array.iteri
    (fun i v ->
      let t = time_at s i in
      if t >= from_s && t < to_s then begin
        incr n;
        acc := !acc +. v
      end)
    s.values;
  if !n = 0 then Float.nan else !acc /. float_of_int !n

let std_from s ~from_s =
  let n = fold_from s ~from_s ~init:0 ~f:(fun acc _ -> acc + 1) in
  if n = 0 then Float.nan
  else begin
    let m = mean_from s ~from_s in
    let ss =
      fold_from s ~from_s ~init:0.0 ~f:(fun acc v ->
          acc +. ((v -. m) *. (v -. m)))
    in
    Float.sqrt (ss /. float_of_int n)
  end

let check_shape a b =
  if a.t0 <> b.t0 || a.dt <> b.dt
     || Array.length a.values <> Array.length b.values
  then invalid_arg "Series: shape mismatch"

let map2 a b ~f =
  check_shape a b;
  { a with values = Array.map2 f a.values b.values }

let sum = function
  | [] -> invalid_arg "Series.sum: empty list"
  | first :: rest ->
    List.fold_left (fun acc s -> map2 acc s ~f:( +. )) first rest

let iteri s ~f = Array.iteri (fun i v -> f i (time_at s i) v) s.values
