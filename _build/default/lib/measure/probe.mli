(** Periodic state sampling.

    Captures observe packets; a probe observes *state* — e.g. a subflow's
    congestion window, a queue's depth — at a fixed period, producing a
    {!Series} aligned with the throughput samplers.  This is how the
    cwnd sawtooth plots behind Fig. 2c's narrative are made. *)

type t

val attach :
  sched:Engine.Sched.t -> period:Engine.Time.t -> until:Engine.Time.t
  -> (unit -> float) -> t
(** Samples [f ()] every [period], starting at [period], until (and
    including) [until].  Raises [Invalid_argument] when the period is not
    positive. *)

val series : t -> Series.t
(** The samples collected so far, as a series with [dt = period]. *)

val samples : t -> int
