type event = { time : Engine.Time.t; tag : Packet.tag; bytes : int }

type t = {
  mutable items : event array;
  mutable size : int;
}

let create () = { items = [||]; size = 0 }

let record t ~time ~tag ~bytes =
  let e = { time; tag; bytes } in
  let cap = Array.length t.items in
  if cap = 0 then t.items <- Array.make 1024 e
  else if t.size = cap then begin
    let fresh = Array.make (2 * cap) e in
    Array.blit t.items 0 fresh 0 t.size;
    t.items <- fresh
  end;
  t.items.(t.size) <- e;
  t.size <- t.size + 1

let attach net ~node ?conn () =
  let t = create () in
  let sched = Netsim.Net.sched net in
  Netsim.Net.add_tap net ~node (fun p ->
      if p.Packet.dst = node && Packet.is_data p then begin
        let keep =
          match conn with
          | None -> true
          | Some c -> (Packet.tcp_exn p).Packet.conn = c
        in
        if keep then
          record t ~time:(Engine.Sched.now sched) ~tag:p.Packet.tag
            ~bytes:p.Packet.size
      end);
  t

let events t = Array.sub t.items 0 t.size
let count t = t.size

let bytes_for_tag t tag =
  let acc = ref 0 in
  for i = 0 to t.size - 1 do
    if t.items.(i).tag = tag then acc := !acc + t.items.(i).bytes
  done;
  !acc

let tags t =
  let seen = Hashtbl.create 8 in
  for i = 0 to t.size - 1 do
    Hashtbl.replace seen t.items.(i).tag ()
  done;
  Hashtbl.fold (fun tag () acc -> tag :: acc) seen [] |> List.sort Int.compare
