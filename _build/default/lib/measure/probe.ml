type t = {
  period : Engine.Time.t;
  started : Engine.Time.t;
  mutable values : float array;
  mutable size : int;
}

let push t v =
  let cap = Array.length t.values in
  if cap = 0 then t.values <- Array.make 256 v
  else if t.size = cap then begin
    let fresh = Array.make (2 * cap) v in
    Array.blit t.values 0 fresh 0 t.size;
    t.values <- fresh
  end;
  t.values.(t.size) <- v;
  t.size <- t.size + 1

let attach ~sched ~period ~until f =
  if Engine.Time.( <= ) period Engine.Time.zero then
    invalid_arg "Probe.attach: period must be positive";
  let started = Engine.Sched.now sched in
  let t = { period; started; values = [||]; size = 0 } in
  let rec tick at =
    if Engine.Time.( <= ) at until then
      ignore
        (Engine.Sched.at sched at (fun () ->
             push t (f ());
             tick (Engine.Time.add at period)))
  in
  tick (Engine.Time.add started period);
  t

let series t =
  Series.create
    ~t0:(Engine.Time.to_float_s t.started)
    ~dt:(Engine.Time.to_float_s t.period)
    (Array.sub t.values 0 t.size)

let samples t = t.size
