let topology_with ?(link_delay = Engine.Time.ms 1)
    ?(default_capacity_mbps = 100) () =
  let b = Netgraph.Topology.builder () in
  let s = Netgraph.Topology.add_node b "s" in
  let v1 = Netgraph.Topology.add_node b "v1" in
  let v2 = Netgraph.Topology.add_node b "v2" in
  let v3 = Netgraph.Topology.add_node b "v3" in
  let v4 = Netgraph.Topology.add_node b "v4" in
  let d = Netgraph.Topology.add_node b "d" in
  let link ?(delay = link_delay) u v mbps =
    ignore
      (Netgraph.Topology.add_link b ~u ~v
         ~capacity_bps:(Netgraph.Topology.mbps mbps) ~delay)
  in
  let dflt = default_capacity_mbps in
  link s v1 40;   (* shared by paths 1 and 2 *)
  link s v2 dflt;
  link v1 v2 dflt;
  (* Half delay on v1-v4 makes Path 2 strictly the shortest-RTT route
     (the paper's "default shortest path"); otherwise the unused 3-hop
     route s-v2-v3-d would tie it. *)
  link ~delay:(link_delay / 2) v1 v4 dflt;
  link v2 v3 60;  (* shared by paths 1 and 3 *)
  link v3 v4 dflt;
  link v3 d dflt;
  link v4 d 80;   (* shared by paths 2 and 3 *)
  Netgraph.Topology.build b

let topology () = topology_with ()

let paths topo =
  [
    Netgraph.Path.of_names topo [ "s"; "v1"; "v2"; "v3"; "d" ];
    Netgraph.Path.of_names topo [ "s"; "v1"; "v4"; "d" ];
    Netgraph.Path.of_names topo [ "s"; "v2"; "v3"; "v4"; "d" ];
  ]

let tagged_paths ?(default = 2) topo =
  if default < 1 || default > 3 then
    invalid_arg "Paper_net.tagged_paths: default must be 1, 2 or 3";
  let tagged = Mptcp.Path_manager.tag_paths (paths topo) in
  Mptcp.Path_manager.with_default tagged ~default_tag:default

let optimum () =
  let topo = topology () in
  Netgraph.Constraints.optimum topo (paths topo)

let optimal_total_mbps = 90.0

let greedy_total_mbps ~default =
  let topo = topology () in
  let order =
    match default with
    | 1 -> [ 0; 1; 2 ]
    | 2 -> [ 1; 0; 2 ]
    | 3 -> [ 2; 0; 1 ]
    | _ -> invalid_arg "Paper_net.greedy_total_mbps: default must be 1, 2 or 3"
  in
  let x = Netgraph.Constraints.greedy_from topo (paths topo) ~order in
  Array.fold_left ( +. ) 0.0 x /. 1e6
