type figure = {
  id : string;
  title : string;
  chart : string;
  csv : string;
  result : Scenario.result option;
}

let fig1 () =
  let topo = Paper_net.topology () in
  let paths = Paper_net.paths topo in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Format.asprintf "%a@." Netgraph.Topology.pp topo);
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf "Path %d: %s  (bottleneck %d Mbps, delay %s)\n"
           (i + 1)
           (Netgraph.Path.to_string topo p)
           (Netgraph.Path.bottleneck_bps topo p / 1_000_000)
           (Engine.Time.to_string (Netgraph.Path.one_way_delay topo p))))
    paths;
  Buffer.add_string buf
    (Printf.sprintf "max-flow s->d (unrestricted): %d Mbps\n"
       (Netgraph.Maxflow.max_flow topo
          ~src:(Netgraph.Topology.node_id topo "s")
          ~dst:(Netgraph.Topology.node_id topo "d")
        / 1_000_000));
  (match Netgraph.Disjoint.bridges topo with
  | [] ->
    Buffer.add_string buf
      "no bridges: every single link failure leaves s and d connected\n"
  | ls ->
    Buffer.add_string buf
      (Printf.sprintf "bridges (single points of failure): %s\n"
         (String.concat ", "
            (List.map
               (fun lid ->
                 let l = Netgraph.Topology.link topo lid in
                 Printf.sprintf "%s--%s"
                   (Netgraph.Topology.node_name topo l.Netgraph.Topology.u)
                   (Netgraph.Topology.node_name topo l.Netgraph.Topology.v))
               ls))));
  {
    id = "1";
    title = "Fig. 1a/1b: the network and the three overlapping paths";
    chart = Buffer.contents buf;
    csv = "";
    result = None;
  }

let fig1c () =
  let topo = Paper_net.topology () in
  let paths = Paper_net.paths topo in
  let sys = Netgraph.Constraints.extract topo paths in
  let opt = Netgraph.Constraints.optimum topo paths in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Format.asprintf "%a@." (Netgraph.Constraints.pp_system topo) sys);
  let x = opt.Netgraph.Constraints.per_path_bps in
  Buffer.add_string buf
    (Printf.sprintf
       "LP optimum: total %.1f Mbps at (x1, x2, x3) = (%.1f, %.1f, %.1f)\n"
       (opt.Netgraph.Constraints.total_bps /. 1e6)
       (x.(0) /. 1e6) (x.(1) /. 1e6) (x.(2) /. 1e6));
  Buffer.add_string buf "binding bottlenecks (shadow price Mb/Mb):\n";
  List.iter
    (fun (lid, price) ->
      let l = Netgraph.Topology.link topo lid in
      Buffer.add_string buf
        (Printf.sprintf "  %s--%s: %.2f\n"
           (Netgraph.Topology.node_name topo l.Netgraph.Topology.u)
           (Netgraph.Topology.node_name topo l.Netgraph.Topology.v)
           price))
    opt.Netgraph.Constraints.bottlenecks;
  Buffer.add_string buf
    (Printf.sprintf
       "greedy fill from default Path 2 (Pareto point): %.1f Mbps total\n"
       (Paper_net.greedy_total_mbps ~default:2));
  (* The constraint polytope itself (what the paper's 3-d plot shows):
     enumerate its corner points. *)
  let vertices =
    Lp.Enumerate.feasible_vertices ~a:sys.Netgraph.Constraints.a
      ~b:sys.Netgraph.Constraints.b
  in
  Buffer.add_string buf
    (Printf.sprintf "feasible-region vertices (%d):\n" (List.length vertices));
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  (%5.1f, %5.1f, %5.1f)  total %5.1f Mbps\n"
           (v.(0) /. 1e6) (v.(1) /. 1e6) (v.(2) /. 1e6)
           ((v.(0) +. v.(1) +. v.(2)) /. 1e6)))
    vertices;
  let csv =
    Measure.Render.to_csv ~header:[ "x1_mbps"; "x2_mbps"; "x3_mbps"; "total" ]
      ~rows:
        (List.map
           (fun v ->
             [ v.(0) /. 1e6; v.(1) /. 1e6; v.(2) /. 1e6;
               (v.(0) +. v.(1) +. v.(2)) /. 1e6 ])
           vertices)
  in
  {
    id = "1c";
    title = "Fig. 1c: throughput constraints and LP optimum";
    chart = Buffer.contents buf;
    csv;
    result = None;
  }

let named_series result =
  List.map
    (fun (tag, s) -> (Printf.sprintf "path%d" tag, s))
    result.Scenario.per_tag
  @ [ ("total", result.Scenario.total) ]

let measured_figure ~id ~title ~cc ~duration ~sampling ~seed =
  let topo = Paper_net.topology () in
  let paths = Paper_net.tagged_paths ~default:2 topo in
  let spec =
    Scenario.make ~topo ~paths ~cc ~duration ~sampling ~seed ()
  in
  let result = Scenario.run spec in
  let named = named_series result in
  let chart =
    Measure.Render.ascii_chart ~y_max:100.0
      ~title:(Printf.sprintf "%s (Mbps; optimum %.0f)" title
                (Scenario.optimal_total_mbps result))
      named
  in
  { id; title; chart; csv = Measure.Render.series_csv named;
    result = Some result }

let fig2a ?(seed = 1) () =
  measured_figure ~id:"2a"
    ~title:"Fig. 2a: per-path rate, MPTCP-CUBIC, 100 ms sampling"
    ~cc:Mptcp.Algorithm.Cubic ~duration:(Engine.Time.s 4)
    ~sampling:(Engine.Time.ms 100) ~seed

let fig2b ?(seed = 1) () =
  measured_figure ~id:"2b"
    ~title:"Fig. 2b: per-path rate, MPTCP-OLIA, 100 ms sampling"
    ~cc:Mptcp.Algorithm.Olia ~duration:(Engine.Time.s 4)
    ~sampling:(Engine.Time.ms 100) ~seed

let fig2c ?(seed = 1) () =
  let f =
    measured_figure ~id:"2c"
      ~title:"Fig. 2c: per-path rate, MPTCP-CUBIC, first 0.5 s at 10 ms"
      ~cc:Mptcp.Algorithm.Cubic ~duration:(Engine.Time.ms 500)
      ~sampling:(Engine.Time.ms 10) ~seed
  in
  (* The paper credits the TCP sawtooth visible at this resolution for
     CUBIC's gradient search: show the congestion windows alongside. *)
  match f.result with
  | None -> f
  | Some r ->
    let cwnd_chart =
      Measure.Render.ascii_chart
        ~title:"per-subflow cwnd (MSS), same window"
        (List.map
           (fun (tag, s) -> (Printf.sprintf "cwnd%d" tag, s))
           r.Scenario.cwnd_series)
    in
    { f with chart = f.chart ^ cwnd_chart }

let all ?(seed = 1) ?jobs () =
  Runner.run_jobs ?jobs
    [
      Runner.job ~label:"fig1" (fun () -> fig1 ());
      Runner.job ~label:"fig1c" (fun () -> fig1c ());
      Runner.job ~label:"fig2a" (fun () -> fig2a ~seed ());
      Runner.job ~label:"fig2b" (fun () -> fig2b ~seed ());
      Runner.job ~label:"fig2c" (fun () -> fig2c ~seed ());
    ]

let by_id = function
  | "1" | "1a" | "1b" -> Some (fun ?seed:_ () -> fig1 ())
  | "1c" -> Some (fun ?seed:_ () -> fig1c ())
  | "2a" -> Some (fun ?seed () -> fig2a ?seed ())
  | "2b" -> Some (fun ?seed () -> fig2b ?seed ())
  | "2c" -> Some (fun ?seed () -> fig2c ?seed ())
  | _ -> None
