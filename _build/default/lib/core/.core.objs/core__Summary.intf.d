lib/core/summary.mli: Engine Format Mptcp
