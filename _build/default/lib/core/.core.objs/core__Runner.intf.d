lib/core/runner.mli: Scenario
