lib/core/scaling.ml: Engine Format List Measure Mptcp Netgraph Printf Runner Scenario
