lib/core/scenario.mli: Engine Format Measure Mptcp Netgraph Netsim Packet Tcp
