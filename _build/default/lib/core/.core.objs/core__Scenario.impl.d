lib/core/scenario.ml: Engine Format List Measure Mptcp Netgraph Netsim Option Packet Printf Tcp
