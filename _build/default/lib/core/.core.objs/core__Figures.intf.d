lib/core/figures.mli: Scenario
