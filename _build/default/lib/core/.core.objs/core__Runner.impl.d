lib/core/runner.ml: Engine List Mptcp Printf Scenario
