lib/core/paper_net.mli: Engine Mptcp Netgraph
