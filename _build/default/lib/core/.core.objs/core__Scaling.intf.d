lib/core/scaling.mli: Engine Format Mptcp
