lib/core/summary.ml: Engine Float Format List Measure Mptcp Paper_net Printf Runner Scenario
