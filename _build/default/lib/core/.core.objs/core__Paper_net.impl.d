lib/core/paper_net.ml: Array Engine Mptcp Netgraph
