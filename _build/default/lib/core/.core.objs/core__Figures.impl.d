lib/core/figures.ml: Array Buffer Engine Format List Lp Measure Mptcp Netgraph Paper_net Printf Runner Scenario String
