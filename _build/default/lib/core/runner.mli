(** Parallel execution of independent reproduction jobs.

    Everything the harness regenerates — figures, the Table-1
    convergence sweep, the scaling extension, the ablation grids — is a
    list of jobs with no shared mutable state: each {!Scenario.run}
    builds its own {!Engine.Sched} and {!Engine.Rng}, seeded only from
    the spec.  [Runner] fans such lists out over an {!Engine.Pool} of
    domains.  Because results come back in input order and every job is
    self-seeded, output is bit-identical whatever [?jobs] is; [~jobs:1]
    is exactly the serial path (no domain is spawned).

    [?jobs] defaults to {!default_jobs} everywhere. *)

type 'a job
(** A named independent unit of work. *)

val job : ?label:string -> (unit -> 'a) -> 'a job
val label : 'a job -> string

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving, exception-propagating parallel map
    (see {!Engine.Pool.map}). *)

val run_jobs : ?jobs:int -> 'a job list -> 'a list

val scenarios : ?jobs:int -> Scenario.spec list -> Scenario.result list
(** Runs each spec on its own domain slot. *)

val scenario_jobs : Scenario.spec list -> Scenario.result job list
(** Wraps specs as labelled jobs ("cc seed=n") for {!run_jobs}. *)
