(** Extension experiment: how the optimization problem scales.

    The paper's intro asks "how complicated the underlying optimization
    problem MPTCP may face" can get; this experiment generalises its
    construction to [n] pairwise-overlapping paths
    ({!Netgraph.Generate.pairwise_overlap}) and measures, per congestion
    controller, what fraction of the LP optimum MPTCP actually achieves
    as the number of coupled paths grows. *)

type row = {
  n : int;
  cc : Mptcp.Algorithm.t;
  optimal_mbps : float;
  achieved_mbps : float;      (** tail mean of total wire throughput *)
  ratio : float;              (** achieved / optimal *)
  time_to_opt_s : float option;
}

val sweep :
  ?ns:int list ->
  ?ccs:Mptcp.Algorithm.t list ->
  ?duration:Engine.Time.t ->
  ?seed:int ->
  ?jobs:int ->
  unit -> row list
(** Defaults: n in 2..5, {CUBIC, LIA, OLIA}, 15 s runs, seed 1.
    Capacities follow {!Netgraph.Generate.spread_caps} (base 30, step 5
    Mbps) so every pair has a distinct bottleneck.  Each (n, cc) run is
    an independent job executed on [?jobs] domains; rows are identical
    for every [?jobs] value. *)

val pp_table : Format.formatter -> row list -> unit
val to_csv : row list -> string
