(** The paper's model network (Fig. 1a) and its three overlapping paths
    (Fig. 1b).

    Six nodes [s, v1, v2, v3, v4, d].  Default link capacity 100 Mbps;
    the three special links realise the pairwise bottlenecks:

    - [s -- v1] at 40 Mbps, shared by Paths 1 and 2;
    - [v2 -- v3] at 60 Mbps, shared by Paths 1 and 3;
    - [v4 -- d] at 80 Mbps, shared by Paths 2 and 3.

    Paths:
    - Path 1: [s > v1 > v2 > v3 > d]  (4 hops)
    - Path 2: [s > v1 > v4 > d]       (3 hops — the default shortest path)
    - Path 3: [s > v2 > v3 > v4 > d]  (4 hops)

    The resulting LP ([x1+x2 <= 40], [x1+x3 <= 60], [x2+x3 <= 80]) has
    optimum 90 Mbps at [(10, 30, 50)] — see DESIGN.md for how the paper's
    (internally inconsistent) constraint labels were resolved. *)

val topology : unit -> Netgraph.Topology.t
(** A fresh copy of the network; every link has 1 ms propagation delay
    (except [v1 -- v4], which gets half that so Path 2 is strictly the
    shortest-RTT route, the paper's "default shortest path"). *)

val topology_with :
  ?link_delay:Engine.Time.t -> ?default_capacity_mbps:int -> unit
  -> Netgraph.Topology.t

val paths : Netgraph.Topology.t -> Netgraph.Path.t list
(** [Path 1; Path 2; Path 3] on a topology built by {!topology}. *)

val tagged_paths :
  ?default:int -> Netgraph.Topology.t -> Mptcp.Path_manager.t
(** Tags are the path numbers (1, 2, 3).  [default] (1, 2 or 3 — default
    2, as in the paper's measurements) selects which path is the default
    subflow, i.e. comes first.  Raises [Invalid_argument] otherwise. *)

val optimum : unit -> Netgraph.Constraints.optimum
(** The LP optimum: 90 Mbps total at (10, 30, 50). *)

val optimal_total_mbps : float
(** 90.0 — kept as a constant for tests and benchmark labels. *)

val greedy_total_mbps : default:int -> float
(** Total rate of the "fill each path independently, default first"
    Pareto point the paper describes (80 Mbps when starting from
    Path 2). *)
