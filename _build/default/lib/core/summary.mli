(** "Table 1": the paper's prose findings as a measured table.

    The paper reports (Section 3, prose only):
    - CUBIC always reached the optimum, with transient instability;
    - LIA never reached the optimum;
    - OLIA reached it only when Path 2 was the default, and slowly
      (~20 s).

    {!sweep} measures exactly that grid — congestion control x default
    path x seed — and condenses each cell into convergence statistics. *)

type row = {
  cc : Mptcp.Algorithm.t;
  default_path : int;
  seeds : int;
  reached : int;            (** runs that sustainedly reached the optimum *)
  mean_time_to_opt_s : float;  (** over the runs that reached; nan if none *)
  mean_tail_mbps : float;   (** mean total rate over each run's last quarter *)
  tail_std_mbps : float;    (** spread of that tail mean across seeds *)
  mean_dips : float;        (** instability: drops below target after reaching *)
  tail_cv : float;          (** coefficient of variation of the tail *)
}

val sweep :
  ?ccs:Mptcp.Algorithm.t list ->
  ?defaults:int list ->
  ?seeds:int list ->
  ?duration:Engine.Time.t ->
  ?tolerance:float ->
  ?jobs:int ->
  unit -> row list
(** Defaults: the paper's three algorithms (plus BALIA, EWTCP and
    wVegas), defaults 1-3, seeds 1-3, 20 s runs, 5% tolerance.  The
    grid's individual (cc, default, seed) runs execute on [?jobs]
    domains (default {!Runner.default_jobs}); rows are identical for
    every [?jobs] value. *)

val pp_table : Format.formatter -> row list -> unit
val to_csv : row list -> string
