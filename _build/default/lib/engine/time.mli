(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation.  Using integers (rather than float seconds) makes event
    ordering exact and simulations bit-for-bit reproducible.  OCaml's
    63-bit native [int] covers roughly 292 simulated years, far beyond any
    experiment in this repository. *)

type t = int
(** Nanoseconds since simulation start.  Always non-negative. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val of_float_s : float -> t
(** [of_float_s x] converts [x] seconds to nanoseconds, rounding to the
    nearest nanosecond.  Raises [Invalid_argument] on negative or
    non-finite input. *)

val to_float_s : t -> float
(** [to_float_s t] is [t] expressed in seconds. *)

val add : t -> t -> t
val sub : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a - b]; may be negative when [b] is later than [a]. *)

val scale : t -> float -> t
(** [scale t k] is [t] multiplied by [k], rounded to the nearest
    nanosecond. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints a human-friendly rendering, e.g. ["1.234ms"] or ["2.5s"]. *)

val to_string : t -> string

val tx_time : bits:int -> rate_bps:int -> t
(** [tx_time ~bits ~rate_bps] is the exact serialization time of [bits]
    bits on a link of [rate_bps] bits per second, rounded up to the next
    nanosecond so that back-to-back transmissions never overlap.
    Raises [Invalid_argument] if [rate_bps <= 0] or [bits < 0]. *)
