(** Imperative binary min-heap, specialised to integer priorities.

    This is the event queue of the simulator, so it favours raw speed:
    a growable array, no functors, integer keys.  Ties are broken by a
    secondary integer key supplied at insertion (the scheduler uses a
    monotonically increasing sequence number, giving FIFO order among
    simultaneous events and hence deterministic replay). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap.  [capacity] is the initial array size (default 256);
    the heap grows as needed. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> tie:int -> 'a -> unit
(** [push h ~key ~tie v] inserts [v] with primary priority [key]; among
    equal keys the smaller [tie] pops first. *)

val pop : 'a t -> (int * int * 'a) option
(** Removes and returns the minimum [(key, tie, value)]. *)

val peek : 'a t -> (int * int * 'a) option
(** Returns the minimum without removing it. *)

val clear : 'a t -> unit

val fold : 'a t -> init:'b -> f:('b -> key:int -> 'a -> 'b) -> 'b
(** Folds over live entries in unspecified order (used for diagnostics). *)
