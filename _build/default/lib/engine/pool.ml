(* Fixed-size worker pool on OCaml 5 domains.

   One mutex guards both the job queue and each map call's completion
   state; workers block on [nonempty] and callers on a per-call
   condition.  Jobs are plain thunks, so the pool itself is monomorphic
   and every [run_list]/[map] call closes over its own (polymorphic)
   result array. *)

type job = Run of (unit -> unit) | Quit

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  mutable workers : unit Domain.t array;
  mutable live : bool;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())

let rec worker pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.jobs do
    Condition.wait pool.nonempty pool.mutex
  done;
  let job = Queue.pop pool.jobs in
  Mutex.unlock pool.mutex;
  match job with
  | Quit -> ()
  | Run f ->
    f ();
    worker pool

let create ?(domains = default_domains ()) () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      workers = [||];
      live = true;
    }
  in
  pool.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = Array.length pool.workers

let shutdown pool =
  if pool.live then begin
    pool.live <- false;
    Mutex.lock pool.mutex;
    Array.iter (fun _ -> Queue.add Quit pool.jobs) pool.workers;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers
  end

let run_list pool thunks =
  if not pool.live then invalid_arg "Pool.run_list: pool is shut down";
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ ->
    let thunks = Array.of_list thunks in
    let n = Array.length thunks in
    let results = Array.make n None in
    (* Lowest input index wins when several jobs raise, so the propagated
       exception does not depend on worker timing. *)
    let error = ref None in
    let remaining = ref n in
    let finished = Condition.create () in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      let work () =
        let outcome =
          match thunks.(i) () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock pool.mutex;
        (match outcome with
        | Ok v -> results.(i) <- Some v
        | Error err -> (
          match !error with
          | Some (j, _) when j < i -> ()
          | Some _ | None -> error := Some (i, err)));
        decr remaining;
        if !remaining = 0 then Condition.broadcast finished;
        Mutex.unlock pool.mutex
      in
      Queue.add (Run work) pool.jobs
    done;
    Condition.broadcast pool.nonempty;
    while !remaining > 0 do
      Condition.wait finished pool.mutex
    done;
    Mutex.unlock pool.mutex;
    (match !error with
    | Some (_, (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* all jobs ran *))
         results)

let map_pool pool f xs = run_list pool (List.map (fun x -> fun () -> f x) xs)

let map ?domains f xs =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  if domains < 1 then invalid_arg "Pool.map: domains must be >= 1";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when domains = 1 -> List.map f xs
  | _ ->
    let pool = create ~domains:(min domains (List.length xs)) () in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () -> map_pool pool f xs)
