type timer = { mutable alive : bool; action : unit -> unit }

type t = {
  heap : timer Heap.t;
  mutable clock : Time.t;
  mutable seq : int;
  mutable fired : int;
}

let create () = { heap = Heap.create (); clock = Time.zero; seq = 0; fired = 0 }
let now t = t.clock

let at t when_ f =
  if Time.( < ) when_ t.clock then
    invalid_arg
      (Format.asprintf "Sched.at: %a is before now (%a)" Time.pp when_
         Time.pp t.clock);
  let timer = { alive = true; action = f } in
  t.seq <- t.seq + 1;
  Heap.push t.heap ~key:when_ ~tie:t.seq timer;
  timer

let after t delay f =
  if Time.( < ) delay Time.zero then invalid_arg "Sched.after: negative delay";
  at t (Time.add t.clock delay) f

let cancel timer = timer.alive <- false
let pending timer = timer.alive

let fire t when_ timer =
  t.clock <- when_;
  if timer.alive then begin
    timer.alive <- false;
    t.fired <- t.fired + 1;
    timer.action ()
  end

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (when_, _, timer) ->
    fire t when_ timer;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match Heap.peek t.heap with
      | Some (when_, _, _) when Time.( <= ) when_ horizon ->
        ignore (step t)
      | Some _ | None -> continue := false
    done;
    if Time.( < ) t.clock horizon then t.clock <- horizon

let queue_length t = Heap.length t.heap
let events_processed t = t.fired
