type 'a entry = { key : int; tie : int; value : 'a }

type 'a t = { mutable items : 'a entry array; mutable size : int }

(* Slot 0 is the root.  Unused slots past [size] keep stale entries, which
   is harmless because [size] bounds all accesses (it does retain values;
   acceptable for the short-lived simulation objects stored here). *)

let create ?capacity:_ () = { items = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0
let less a b = a.key < b.key || (a.key = b.key && a.tie < b.tie)

let rec sift_up items i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less items.(i) items.(parent) then begin
      let tmp = items.(i) in
      items.(i) <- items.(parent);
      items.(parent) <- tmp;
      sift_up items parent
    end
  end

let rec sift_down items size i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < size && less items.(left) items.(!smallest) then smallest := left;
  if right < size && less items.(right) items.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = items.(i) in
    items.(i) <- items.(!smallest);
    items.(!smallest) <- tmp;
    sift_down items size !smallest
  end

let push h ~key ~tie value =
  let e = { key; tie; value } in
  let cap = Array.length h.items in
  if cap = 0 then h.items <- Array.make 16 e
  else if h.size = cap then begin
    let fresh = Array.make (2 * cap) e in
    Array.blit h.items 0 fresh 0 h.size;
    h.items <- fresh
  end;
  h.items.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h.items (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let root = h.items.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.items.(0) <- h.items.(h.size);
      sift_down h.items h.size 0
    end;
    Some (root.key, root.tie, root.value)
  end

let peek h =
  if h.size = 0 then None
  else
    let root = h.items.(0) in
    Some (root.key, root.tie, root.value)

let clear h = h.size <- 0

let fold h ~init ~f =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    let e = h.items.(i) in
    acc := f !acc ~key:e.key e.value
  done;
  !acc
