type 'a entry = { key : int; tie : int; value : 'a }

type 'a t = { mutable items : 'a entry array; mutable size : int }

(* Slot 0 is the root.  Slots at or past [size] hold the shared [nil]
   sentinel, never a user entry: [pop], [clear] and [compact] overwrite
   freed slots so the heap retains no values beyond their lifetime.  The
   cast in [nil] is safe because [size] bounds every read — the
   sentinel's [value] field is never inspected. *)

let nil : unit -> 'a entry =
  let shared = { key = min_int; tie = 0; value = Obj.repr () } in
  fun () -> Obj.magic shared

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  let capacity = max capacity 0 in
  let items = if capacity = 0 then [||] else Array.make capacity (nil ()) in
  { items; size = 0 }

let length h = h.size
let capacity h = Array.length h.items
let is_empty h = h.size = 0
let less a b = a.key < b.key || (a.key = b.key && a.tie < b.tie)

let rec sift_up items i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less items.(i) items.(parent) then begin
      let tmp = items.(i) in
      items.(i) <- items.(parent);
      items.(parent) <- tmp;
      sift_up items parent
    end
  end

let rec sift_down items size i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < size && less items.(left) items.(!smallest) then smallest := left;
  if right < size && less items.(right) items.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = items.(i) in
    items.(i) <- items.(!smallest);
    items.(!smallest) <- tmp;
    sift_down items size !smallest
  end

let push h ~key ~tie value =
  let e = { key; tie; value } in
  let cap = Array.length h.items in
  if h.size = cap then begin
    let fresh = Array.make (max 16 (2 * cap)) (nil ()) in
    Array.blit h.items 0 fresh 0 h.size;
    h.items <- fresh
  end;
  h.items.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h.items (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let root = h.items.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.items.(0) <- h.items.(h.size);
      sift_down h.items h.size 0
    end;
    h.items.(h.size) <- nil ();
    Some (root.key, root.tie, root.value)
  end

let peek h =
  if h.size = 0 then None
  else
    let root = h.items.(0) in
    Some (root.key, root.tie, root.value)

let clear h =
  Array.fill h.items 0 h.size (nil ());
  h.size <- 0

let compact h ~keep =
  let items = h.items in
  let n = h.size in
  let live = ref 0 in
  for i = 0 to n - 1 do
    let e = items.(i) in
    if keep e.value then begin
      items.(!live) <- e;
      incr live
    end
  done;
  Array.fill items !live (n - !live) (nil ());
  h.size <- !live;
  (* Floyd heapify: entries keep their (key, tie), so the pop order of
     survivors is exactly what it would have been without compaction. *)
  for i = (!live / 2) - 1 downto 0 do
    sift_down items !live i
  done

let fold h ~init ~f =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    let e = h.items.(i) in
    acc := f !acc ~key:e.key e.value
  done;
  !acc
