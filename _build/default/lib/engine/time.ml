type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let of_float_s x =
  if not (Float.is_finite x) || x < 0.0 then
    invalid_arg "Time.of_float_s: negative or non-finite"
  else Float.to_int (Float.round (x *. 1e9))

let to_float_s t = float_of_int t /. 1e9
let add = ( + )
let sub a b = a - b
let diff a b = a - b
let scale t k = Float.to_int (Float.round (float_of_int t *. k))
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b

let pp fmt t =
  if t >= s 1 then Format.fprintf fmt "%.6gs" (to_float_s t)
  else if t >= ms 1 then Format.fprintf fmt "%.6gms" (float_of_int t /. 1e6)
  else if t >= us 1 then Format.fprintf fmt "%.6gus" (float_of_int t /. 1e3)
  else Format.fprintf fmt "%dns" t

let to_string t = Format.asprintf "%a" pp t

let tx_time ~bits ~rate_bps =
  if rate_bps <= 0 then invalid_arg "Time.tx_time: rate must be positive";
  if bits < 0 then invalid_arg "Time.tx_time: negative size";
  (* ceil (bits * 1e9 / rate); [bits] stays below ~2^17 for any packet, so
     the product fits comfortably in 63 bits. *)
  ((bits * 1_000_000_000) + rate_bps - 1) / rate_bps
