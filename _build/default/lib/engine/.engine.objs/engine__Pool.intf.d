lib/engine/pool.mli:
