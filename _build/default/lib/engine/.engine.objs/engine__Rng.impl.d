lib/engine/rng.ml: Int64 Stdlib
