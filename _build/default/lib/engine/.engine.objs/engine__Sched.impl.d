lib/engine/sched.ml: Format Heap Time
