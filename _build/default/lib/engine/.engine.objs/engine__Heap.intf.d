lib/engine/heap.mli:
