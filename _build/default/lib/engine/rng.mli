(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic decision in a simulation draws from one [Rng.t]
    created from the run's seed, so runs replay bit-for-bit.  SplitMix64
    is tiny, fast, passes BigCrush, and — unlike [Stdlib.Random] — its
    stream is stable across OCaml releases. *)

type t

val create : int -> t
(** [create seed] makes a generator; equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator (used to give each traffic
    source its own stream without coupling their consumption). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (> 0). *)

val uniform_time : t -> lo:Time.t -> hi:Time.t -> Time.t
(** Uniform integer time in [\[lo, hi\]].  Raises if [hi < lo]. *)
