type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take 62 non-negative bits; modulo bias is negligible for the small
     bounds used here (< 2^40). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = ref (float t 1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

let uniform_time t ~lo ~hi =
  if Stdlib.( < ) hi lo then invalid_arg "Rng.uniform_time: hi < lo";
  lo + int t (hi - lo + 1)
