(** Subflow scheduling policies.

    Decides which subflow carries the next connection-level chunk.  With
    an unlimited send buffer and a bulk source (the paper's iperf
    setup) every subflow always has data, so the policy is immaterial
    there; it matters when {!Connection} is given a finite send buffer or
    a latency-sensitive source.

    [Min_rtt] is the Linux MPTCP default scheduler the paper used. *)

type policy =
  | Min_rtt      (** prefer the subflow with the lowest smoothed RTT *)
  | Round_robin  (** rotate across subflows with window space *)
  | Redundant
      (** duplicate the stream on every subflow (Vulimiri et al.'s
          latency-via-redundancy, the paper's reference [5]) *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

(** A candidate subflow as seen by the scheduler. *)
type candidate = {
  index : int;
  srtt_s : float;
  window_space : int;  (** bytes of congestion window still unused *)
}

type decision =
  | Grant
  | Defer of int option
      (** refuse the requester; the payload should go to the given
          subflow instead (kick it), or nobody right now *)

val decide : policy -> cursor:int ref -> requester:int
  -> candidate array -> decision
(** [decide] assumes the requester has window space (it is pulling).
    [cursor] is the rotation state for [Round_robin]; [Redundant] always
    grants. *)
