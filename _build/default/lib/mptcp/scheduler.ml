type policy = Min_rtt | Round_robin | Redundant

let policy_name = function
  | Min_rtt -> "minrtt"
  | Round_robin -> "roundrobin"
  | Redundant -> "redundant"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "minrtt" | "min_rtt" | "default" -> Some Min_rtt
  | "roundrobin" | "round_robin" | "rr" -> Some Round_robin
  | "redundant" -> Some Redundant
  | _ -> None

type candidate = { index : int; srtt_s : float; window_space : int }
type decision = Grant | Defer of int option

let decide policy ~cursor ~requester candidates =
  match policy with
  | Redundant -> Grant
  | Min_rtt ->
    let best = ref None in
    Array.iter
      (fun c ->
        if c.window_space > 0 then
          match !best with
          | Some b when b.srtt_s <= c.srtt_s -> ()
          | Some _ | None -> best := Some c)
      candidates;
    (match !best with
    | None -> Grant (* requester claims space; trust it *)
    | Some b -> if b.index = requester then Grant else Defer (Some b.index))
  | Round_robin ->
    let n = Array.length candidates in
    if n = 0 then Grant
    else begin
      (* Advance the cursor to the next subflow with window space. *)
      let rec find i remaining =
        if remaining = 0 then None
        else
          let c = candidates.(i mod n) in
          if c.window_space > 0 then Some (i mod n) else find (i + 1) (remaining - 1)
      in
      match find !cursor n with
      | None -> Grant
      | Some chosen ->
        if chosen = requester then begin
          cursor := (chosen + 1) mod n;
          Grant
        end
        else Defer (Some chosen)
    end
