lib/mptcp/path_manager.ml: Format List Netgraph Netsim Packet
