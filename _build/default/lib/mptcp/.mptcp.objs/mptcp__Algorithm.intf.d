lib/mptcp/algorithm.mli: Format Tcp
