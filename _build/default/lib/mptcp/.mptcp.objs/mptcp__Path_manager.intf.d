lib/mptcp/path_manager.mli: Format Netgraph Netsim Packet
