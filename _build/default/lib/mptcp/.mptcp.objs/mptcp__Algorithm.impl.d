lib/mptcp/algorithm.ml: Cc_balia Cc_ewtcp Cc_lia Cc_olia Cc_wvegas Format String Tcp
