lib/mptcp/connection.mli: Algorithm Engine Netgraph Netsim Packet Path_manager Scheduler Tcp
