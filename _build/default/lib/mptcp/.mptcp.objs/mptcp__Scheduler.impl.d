lib/mptcp/scheduler.ml: Array String
