lib/mptcp/cc_wvegas.ml: Cc Coupled Float Tcp
