lib/mptcp/reassembly.ml: Int Map
