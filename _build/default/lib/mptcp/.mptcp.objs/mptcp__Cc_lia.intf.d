lib/mptcp/cc_lia.mli: Tcp
