lib/mptcp/cc_balia.ml: Cc Coupled Float Tcp
