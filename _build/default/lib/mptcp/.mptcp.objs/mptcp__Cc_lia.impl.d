lib/mptcp/cc_lia.ml: Cc Coupled Float Tcp
