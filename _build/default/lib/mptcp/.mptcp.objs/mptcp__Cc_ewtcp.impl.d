lib/mptcp/cc_ewtcp.ml: Array Cc Coupled Float Tcp
