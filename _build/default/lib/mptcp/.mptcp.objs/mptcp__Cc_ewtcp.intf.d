lib/mptcp/cc_ewtcp.mli: Tcp
