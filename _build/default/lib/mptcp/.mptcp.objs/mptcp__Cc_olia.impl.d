lib/mptcp/cc_olia.ml: Array Cc Coupled Float List Tcp
