lib/mptcp/coupled.ml: Array Cc Float List Tcp
