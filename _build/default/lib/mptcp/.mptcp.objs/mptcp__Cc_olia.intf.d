lib/mptcp/cc_olia.mli: Tcp
