lib/mptcp/reassembly.mli:
