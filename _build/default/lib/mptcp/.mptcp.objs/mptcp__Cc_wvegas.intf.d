lib/mptcp/cc_wvegas.mli: Tcp
