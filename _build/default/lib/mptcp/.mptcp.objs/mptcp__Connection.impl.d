lib/mptcp/connection.ml: Algorithm Array Engine Hashtbl List Netgraph Netsim Packet Path_manager Reassembly Scheduler Tcp
