lib/mptcp/cc_balia.mli: Tcp
