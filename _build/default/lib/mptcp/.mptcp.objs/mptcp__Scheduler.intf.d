lib/mptcp/scheduler.mli:
