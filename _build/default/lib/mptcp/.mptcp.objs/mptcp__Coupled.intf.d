lib/mptcp/coupled.mli: Tcp
