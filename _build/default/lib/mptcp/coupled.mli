(** Shared arithmetic for coupled congestion controllers.

    All quantities are in MSS units (windows) and seconds (RTTs), the
    conventions of RFC 6356 and the OLIA/BALIA papers.  Subflows that
    have not yet sent anything are excluded: they would otherwise
    contribute a bogus initial window to the coupling sums. *)

val active : Tcp.Cc.sibling array -> Tcp.Cc.sibling array
(** Established subflows only; falls back to the full array when none is
    established yet (connection start-up). *)

val rate_sum : Tcp.Cc.sibling array -> float
(** [Σ_p w_p / rtt_p]. *)

val max_rate2 : Tcp.Cc.sibling array -> float
(** [max_p w_p / rtt_p²]. *)

val max_rate : Tcp.Cc.sibling array -> float
(** [max_p w_p / rtt_p]. *)

val total_cwnd : Tcp.Cc.sibling array -> float

val halve_on_loss : Tcp.Cc.ctx -> unit
(** The standard multiplicative decrease shared by LIA/OLIA/EWTCP:
    [ssthresh = cwnd/2] (floored at {!Cc.min_cwnd}), [cwnd = ssthresh]. *)

val collapse_on_rto : Tcp.Cc.ctx -> unit
(** [ssthresh = cwnd/2], [cwnd = 1]. *)
