open Tcp

let eps = 1e-9

(* Index sets over the sibling array (only established paths are
   considered; indices refer to the original array so [self_index] can be
   tested for membership). *)
let alpha_for siblings ~self =
  let n = Array.length siblings in
  let considered i = siblings.(i).Cc.established || i = self in
  let quality i =
    let s = siblings.(i) in
    let l = float_of_int s.Cc.loss_interval_bytes in
    l *. l /. s.Cc.srtt_s
  in
  let best_q = ref neg_infinity and max_w = ref neg_infinity in
  for i = 0 to n - 1 do
    if considered i then begin
      if quality i > !best_q then best_q := quality i;
      if siblings.(i).Cc.cwnd > !max_w then max_w := siblings.(i).Cc.cwnd
    end
  done;
  let in_b i = considered i && quality i >= !best_q -. eps in
  let in_m i = considered i && siblings.(i).Cc.cwnd >= !max_w -. eps in
  let collected = ref [] and maxers = ref [] in
  for i = 0 to n - 1 do
    if in_b i && not (in_m i) then collected := i :: !collected;
    if in_m i then maxers := i :: !maxers
  done;
  let n_f = float_of_int n in
  if !collected = [] then 0.0
  else if List.mem self !collected then
    1.0 /. (n_f *. float_of_int (List.length !collected))
  else if List.mem self !maxers then
    -1.0 /. (n_f *. float_of_int (List.length !maxers))
  else 0.0

let factory (ctx : Cc.ctx) =
  let on_ack ~acked =
    if not (Cc.slow_start_ack ctx ~acked) then begin
      let siblings = ctx.Cc.siblings () in
      let self = ctx.Cc.self_index () in
      let active = Coupled.active siblings in
      let denom = Coupled.rate_sum active in
      let w = ctx.Cc.get_cwnd () in
      let rtt = ctx.Cc.srtt_s () in
      let coupled =
        if denom <= 0.0 then 0.0
        else w /. (rtt *. rtt) /. (denom *. denom)
      in
      let alpha = alpha_for siblings ~self in
      let acked_mss = float_of_int acked /. float_of_int ctx.Cc.mss in
      let inc = coupled +. (alpha /. w) in
      (* The increase may be negative on max-window paths; never shrink
         below the floor, and never faster than 1 MSS per MSS acked. *)
      let inc = Float.min inc (1.0 /. w) in
      ctx.Cc.set_cwnd (Float.max Cc.min_cwnd (w +. (inc *. acked_mss)))
    end
  in
  {
    Cc.name = "olia";
    on_ack;
    on_loss = (fun () -> Coupled.halve_on_loss ctx);
    on_rto = (fun () -> Coupled.collapse_on_rto ctx);
  }
