(** Connection-level data-sequence reassembly.

    MPTCP stripes one byte stream across subflows; the receiver must
    reassemble by data-sequence number (DSS) before delivering to the
    application.  Duplicate and overlapping ranges are tolerated (the
    redundant scheduler sends them on purpose). *)

type t

val create : unit -> t

val insert : t -> dseq:int -> len:int -> unit
(** Register receipt of connection-level bytes [\[dseq, dseq + len)].
    Raises [Invalid_argument] when [len <= 0] or [dseq < 0]. *)

val next_expected : t -> int
(** The connection-level cumulative acknowledgement (DATA_ACK): all bytes
    below this point have arrived. *)

val delivered_bytes : t -> int
(** Bytes handed to the application in order; equals {!next_expected} for
    a stream starting at 0. *)

val buffered_bytes : t -> int
(** Bytes received above a gap, awaiting reassembly. *)

val gap_count : t -> int
(** Number of discontiguous ranges buffered. *)
