type t = Cubic | Reno | Lia | Olia | Balia | Ewtcp | Wvegas

let all = [ Cubic; Reno; Lia; Olia; Balia; Ewtcp; Wvegas ]

let coupled = function
  | Cubic | Reno -> false
  | Lia | Olia | Balia | Ewtcp | Wvegas -> true

let name = function
  | Cubic -> "cubic"
  | Reno -> "reno"
  | Lia -> "lia"
  | Olia -> "olia"
  | Balia -> "balia"
  | Ewtcp -> "ewtcp"
  | Wvegas -> "wvegas"

let of_string s =
  match String.lowercase_ascii s with
  | "cubic" -> Some Cubic
  | "reno" -> Some Reno
  | "lia" -> Some Lia
  | "olia" -> Some Olia
  | "balia" -> Some Balia
  | "ewtcp" -> Some Ewtcp
  | "wvegas" | "vegas" -> Some Wvegas
  | _ -> None

let factory = function
  | Cubic -> Tcp.Cc_cubic.factory
  | Reno -> Tcp.Cc_reno.factory
  | Lia -> Cc_lia.factory
  | Olia -> Cc_olia.factory
  | Balia -> Cc_balia.factory
  | Ewtcp -> Cc_ewtcp.factory
  | Wvegas -> Cc_wvegas.factory

let pp fmt t = Format.pp_print_string fmt (name t)
