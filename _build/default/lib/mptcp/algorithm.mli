(** Registry of congestion-control algorithms available to MPTCP
    connections: the three the paper measures (CUBIC, LIA, OLIA) plus
    Reno, BALIA and EWTCP for the extension sweeps. *)

type t =
  | Cubic  (** uncoupled, per-subflow CUBIC — Linux's default *)
  | Reno   (** uncoupled, per-subflow NewReno *)
  | Lia
  | Olia
  | Balia
  | Ewtcp
  | Wvegas  (** delay-based coupled control (extension; not in the paper) *)

val all : t list
val coupled : t -> bool
val name : t -> string
val of_string : string -> t option
val factory : t -> Tcp.Cc.factory
val pp : Format.formatter -> t -> unit
