(** OLIA — the Opportunistic Linked Increases Algorithm (Khalili, Gast,
    Popovic, Le Boudec: "MPTCP is not Pareto-optimal", IEEE/ACM ToN 2013),
    the paper's reference [2] and its third measured algorithm.

    In congestion avoidance, an ACK on path [r] grows [w_r] per MSS
    acknowledged by

    {v  w_r/rtt_r^2 / (sum_p w_p/rtt_p)^2  +  alpha_r / w_r  v}

    The first term is a Kelly/MPTCP-style coupled increase; the second
    re-allocates window between paths: with [l_p] the bytes acknowledged
    in the current inter-loss interval (or the previous one if larger),
    [B = argmax_p l_p^2 / rtt_p] the "best" paths and
    [M = argmax_p w_p] the max-window paths,

    - [alpha_r = 1 / (n |B \ M|)]  for [r] in [B \ M] (best but small),
    - [alpha_r = -1 / (n |M|)]     for [r] in [M] when [B \ M] is
      non-empty,
    - [alpha_r = 0] otherwise,

    with [n] the number of paths.  OLIA provably converges to the
    Pareto-optimal allocation — but slowly; the paper measured ~20 s
    convergence and only when the shortest path was the default. *)

val factory : Tcp.Cc.factory
