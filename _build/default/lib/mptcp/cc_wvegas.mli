(** wVegas — weighted Vegas, the delay-based coupled congestion control
    for MPTCP (Cao, Xu, Fu: "Delay-based congestion control for MPTCP",
    ICNP 2012).

    Instead of reacting to loss, each subflow measures the backlog it
    keeps in the network, [diff = cwnd * (1 - base_rtt / rtt)] packets,
    and steers it towards a per-path quota [alpha_r].  The coupling is in
    the quotas: a global budget (default 10 packets) is split between
    paths in proportion to their rates, so faster paths may queue more —
    traffic consequently migrates towards less congested paths without
    inducing losses.

    This implementation is a faithful simplification: smoothed RTTs stand
    in for per-packet timestamps, adjustments happen once per RTT, and
    slow start exits as soon as a backlog builds (Vegas' gamma test).
    Included as an extension for the algorithm sweep — the paper itself
    measures only loss-based algorithms. *)

val factory : Tcp.Cc.factory

val factory_with : ?total_alpha:float -> unit -> Tcp.Cc.factory
