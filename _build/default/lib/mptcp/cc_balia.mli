(** BALIA — the Balanced Linked Adaptation algorithm (Peng, Walid, Hwang,
    Low: "Multipath TCP: Analysis, Design, and Implementation",
    IEEE/ACM ToN 2016), as shipped in the MPTCP kernel's
    [mptcp_balia.c].

    Not measured in the paper; included as the natural "extension"
    algorithm for the sweep benchmarks, since it was designed to strike a
    balance between LIA's friendliness and OLIA's responsiveness.  With
    [x_p = w_p / rtt_p] and [a = max_p x_p / x_r]:

    - increase per MSS acked on path [r]:
      [ (x_r / rtt_r) / (sum_p x_p)^2 * (1 + a)/2 * (4 + a)/5 ]
    - decrease on loss: [w_r -= w_r / 2 * min(a, 1.5)]. *)

val factory : Tcp.Cc.factory
