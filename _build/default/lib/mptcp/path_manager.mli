(** Path management: which routes a connection gets, and their tags.

    Mirrors the paper's modified [ndiffports] path manager: the operator
    (or an algorithm such as Yen's) supplies a list of paths; each is
    assigned a distinct tag, and one subflow per tag is created.  The
    first path in the list is the {e default} path — the one the
    connection is established on (the paper's experiments hinge on which
    path plays this role). *)

type t = (Packet.tag * Netgraph.Path.t) list

val tag_paths : ?first_tag:int -> Netgraph.Path.t list -> t
(** Assign consecutive tags (default from 1) in list order. *)

val ndiffports :
  Netgraph.Topology.t -> src:int -> dst:int -> subflows:int
  -> ?weight:Netgraph.Shortest.weight -> unit -> t
(** The k-shortest-paths analogue of [ndiffports]: take the [subflows]
    shortest simple paths (by [weight], default propagation delay) and
    tag them.  The shortest path comes first, i.e. is the default —
    matching "Path 2 as default shortest path" in the paper. *)

val fullmesh :
  Netgraph.Topology.t -> src:int -> dst:int
  -> ?weight:Netgraph.Shortest.weight -> unit -> t
(** The kernel's [fullmesh] path manager for multihomed hosts.  In this
    model a host's "addresses" are its access links, so fullmesh tries
    one subflow per (source access link, destination access link) pair:
    the shortest path forced to leave [src] through the one link and
    enter [dst] through the other.  Pairs with no such route are
    skipped; duplicate paths are kept once; the shortest surviving path
    comes first (the default subflow).  Raises [Invalid_argument] when
    [src = dst]. *)

val with_default : t -> default_tag:Packet.tag -> t
(** Reorder so the path carrying [default_tag] is first.  Raises
    [Not_found] when no path has that tag. *)

val install : Netsim.Net.t -> t -> unit
(** Install forward and reverse routes for every tagged path. *)

val pp : Netgraph.Topology.t -> Format.formatter -> t -> unit
