open Tcp
let active siblings =
  let est = Array.of_list
      (List.filter (fun s -> s.Cc.established) (Array.to_list siblings))
  in
  if Array.length est = 0 then siblings else est

let rate_sum siblings =
  Array.fold_left (fun acc s -> acc +. (s.Cc.cwnd /. s.Cc.srtt_s)) 0.0 siblings

let max_rate2 siblings =
  Array.fold_left
    (fun acc s -> Float.max acc (s.Cc.cwnd /. (s.Cc.srtt_s *. s.Cc.srtt_s)))
    0.0 siblings

let max_rate siblings =
  Array.fold_left
    (fun acc s -> Float.max acc (s.Cc.cwnd /. s.Cc.srtt_s))
    0.0 siblings

let total_cwnd siblings =
  Array.fold_left (fun acc s -> acc +. s.Cc.cwnd) 0.0 siblings

let halve_on_loss (ctx : Cc.ctx) =
  let half = Float.max Cc.min_cwnd (ctx.Cc.get_cwnd () /. 2.0) in
  ctx.Cc.set_ssthresh half;
  ctx.Cc.set_cwnd half

let collapse_on_rto (ctx : Cc.ctx) =
  let half = Float.max Cc.min_cwnd (ctx.Cc.get_cwnd () /. 2.0) in
  ctx.Cc.set_ssthresh half;
  ctx.Cc.set_cwnd 1.0
