(** EWTCP — Equally-Weighted TCP (Honda et al.; analysed by Wischik,
    Raiciu, Greenhalgh, Handley, NSDI 2011 — the paper's reference [6]).

    The simplest multipath coupling: each subflow runs AIMD with a
    reduced additive-increase gain [a = 1 / sqrt(n)] so that the
    aggregate competes roughly like one TCP.  It makes no attempt to move
    traffic between paths, so on the overlapping-path network it serves
    as the "no load balancing" lower bound in the benchmark sweeps. *)

val factory : Tcp.Cc.factory
