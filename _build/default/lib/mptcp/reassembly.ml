module Imap = Map.Make (Int)

type t = {
  mutable next : int;
  mutable ranges : int Imap.t; (* start -> end, disjoint, all > next *)
}

let create () = { next = 0; ranges = Imap.empty }

let insert t ~dseq ~len =
  if len <= 0 then invalid_arg "Reassembly.insert: len must be positive";
  if dseq < 0 then invalid_arg "Reassembly.insert: negative dseq";
  let lo = max dseq t.next and hi = dseq + len in
  if hi > t.next then begin
    (* Merge [lo, hi) with any overlapping or adjacent stored ranges. *)
    let lo = ref lo and hi = ref hi in
    let overlapping =
      Imap.filter (fun s e -> s <= !hi && e >= !lo) t.ranges
    in
    Imap.iter
      (fun s e ->
        lo := min !lo s;
        hi := max !hi e;
        t.ranges <- Imap.remove s t.ranges)
      overlapping;
    if !lo <= t.next then begin
      t.next <- max t.next !hi;
      (* Newly contiguous prefix may absorb further stored ranges. *)
      let rec absorb () =
        match Imap.min_binding_opt t.ranges with
        | Some (s, e) when s <= t.next ->
          t.ranges <- Imap.remove s t.ranges;
          if e > t.next then t.next <- e;
          absorb ()
        | Some _ | None -> ()
      in
      absorb ()
    end
    else t.ranges <- Imap.add !lo !hi t.ranges
  end

let next_expected t = t.next
let delivered_bytes t = t.next

let buffered_bytes t =
  Imap.fold (fun s e acc -> acc + (e - s)) t.ranges 0

let gap_count t = Imap.cardinal t.ranges
