(** LIA — the Linked Increases Algorithm (RFC 6356; Wischik et al.,
    NSDI 2011), the original coupled congestion control for MPTCP and one
    of the three algorithms the paper measures.

    In congestion avoidance, an ACK for [b] bytes on subflow [i] grows
    [w_i] by

    {v min ( alpha / w_total , 1 / w_i ) v}

    per MSS acknowledged, where

    {v alpha = w_total * max_p (w_p / rtt_p^2) / ( sum_p w_p / rtt_p )^2 v}

    which caps the aggregate aggressiveness at that of one TCP on the
    best path ("do no harm").  Slow start and the loss response are the
    standard uncoupled ones.  The paper reports that LIA {e never}
    reached the 90 Mbps optimum on the overlapping-path network — the
    conservative coupling stops probing before the rebalancing
    [(40,0,40) -> (10,30,50)] is complete. *)

val factory : Tcp.Cc.factory
